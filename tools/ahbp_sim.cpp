// ahbp_sim — run the AHB+ platform models without writing C++.
//
// The paper's TLM exists so architects can explore the design space early;
// this driver closes the loop: scenarios are small text files (or built-in
// presets), sweeps are scenario files with a [sweep] section of axis lists,
// and both execute through the exact `run_tlm` / `run_rtl` entry points the
// accuracy and speed claims are measured with.
//
//   ahbp_sim list
//   ahbp_sim show <scenario>
//   ahbp_sim run <scenario> [--model tlm|rtl|both] [--items N] [--seed S]
//                           [--vcd FILE] [--capture-trace DIR] [--csv]
//                           [--quiet] [--timeline FILE] [--stats-json FILE]
//                           [--progress] [--self-profile]
//   ahbp_sim checkpoint <scenario> --at N --out FILE [--model tlm|rtl]
//   ahbp_sim resume <checkpoint> [--vcd FILE] [--csv] [--quiet]
//   ahbp_sim sweep <spec> [--jobs N | --farm-workers N]
//                         [--model tlm|rtl|both] [--csv FILE]
//                         [--warmup-cycles N] [--speed] [--progress]
//                         [--sensitivity]
//   ahbp_sim lint <scenario|sweep> [--warmup-cycles N] [--strict]
//   ahbp_sim trace info <file>
//   ahbp_sim trace convert <file> --out FILE [--to text|bin]
//   ahbp_sim trace slice <file> --out FILE --first N [--count K]
//                               [--to text|bin]

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "core/checkpoint.hpp"
#include "core/platform.hpp"
#include "farm/coordinator.hpp"
#include "farm/worker.hpp"
#include "obs/selfprof.hpp"
#include "obs/timeline.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "state/snapshot.hpp"
#include "stats/report.hpp"
#include "sweep/analyze.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_bin.hpp"

namespace {

using namespace ahbp;

int usage(std::ostream& os, int code) {
  os << "usage: ahbp_sim <command> [args]\n"
        "\n"
        "  list                      list built-in scenarios\n"
        "  show <scenario>           print a scenario as a scenario file\n"
        "  run <scenario>            simulate one scenario\n"
        "      --model tlm|rtl|both  model(s) to run (default tlm)\n"
        "      --items N             transactions per master (preset default"
        " otherwise)\n"
        "      --seed S              traffic seed (preset default otherwise)\n"
        "      --vcd FILE            dump RTL waveform (rtl/both only)\n"
        "      --capture-trace DIR   record every master's transaction"
        " stream\n"
        "                            to DIR/masterK.trace + a ready-to-run\n"
        "                            DIR/replay.scenario (single model"
        " only)\n"
        "      --trace-format F      capture trace format: text (default,\n"
        "                            greppable) or bin (seekable, ~10x"
        " faster\n"
        "                            to load; replay auto-detects either)\n"
        "      --register NAME       capture into the captures/ registry:\n"
        "                            traces + replay scenario land under\n"
        "                            captures/NAME/ and 'ahbp_sim run\n"
        "                            workload/NAME' replays them (implies\n"
        "                            --capture-trace; single model only)\n"
        "      --csv                 machine-readable per-master report\n"
        "      --quiet               summary line only\n"
        "      --timeline FILE       write a Chrome-trace-event timeline\n"
        "                            (load in Perfetto / chrome://tracing)\n"
        "      --stats-json FILE     dump every counter, per-master stall\n"
        "                            attribution and violations as JSON\n"
        "      --progress            heartbeat to stderr (cycle, wall time,\n"
        "                            kcycles/s) roughly once a second\n"
        "      --self-profile        table of where the simulator's own wall\n"
        "                            clock went (per kernel component)\n"
        "  checkpoint <scenario>     run to a cycle and snapshot the"
        " platform\n"
        "      --at N                bus cycle to checkpoint at (or the\n"
        "                            scenario's [checkpoint] at_cycle)\n"
        "      --out FILE            checkpoint file (or [checkpoint]"
        " path)\n"
        "      --model tlm|rtl       model to snapshot (default tlm)\n"
        "      --items N / --seed S  as for run\n"
        "  resume <checkpoint>       restore a checkpoint and run to"
        " completion\n"
        "      --vcd FILE            dump RTL waveform from the restore"
        " point\n"
        "      --csv / --quiet       as for run\n"
        "  sweep <spec>              expand and run a sweep file\n"
        "      --jobs N              worker threads (default 1, 0 = all"
        " cores)\n"
        "      --farm-workers N      shard points across N worker"
        " *processes*\n"
        "                            instead of threads: the base is warmed\n"
        "                            once, snapshot bytes ship to each"
        " worker,\n"
        "                            dead workers' points are re-issued;\n"
        "                            output is byte-identical to --jobs\n"
        "      --sensitivity         per-axis report after the table: how"
        " far\n"
        "                            cycles moved when only that axis"
        " varied\n"
        "      --model tlm|rtl|both  model(s) per point (default tlm)\n"
        "      --warmup-cycles N     simulate the base config N cycles once\n"
        "                            and fork every point from the snapshot\n"
        "      --csv FILE            write per-point outcomes as CSV\n"
        "      --speed               add kcycles/sec columns (wall-clock"
        " dependent)\n"
        "      --progress            per-point completion heartbeat to"
        " stderr\n"
        "      --max-cycle-error P   with --model both: fail when any"
        " point's\n"
        "                            TLM-vs-RTL cycle error exceeds P"
        " percent\n"
        "  lint <scenario|sweep>     static analysis without simulating:\n"
        "                            parse/validate, pre-validate traces,\n"
        "                            provable timeouts, bandwidth"
        " oversubscription,\n"
        "                            channel imbalance, axis hygiene\n"
        "      --warmup-cycles N     also flag warm-up fork hazards (axes"
        " that\n"
        "                            demote points to cold runs or cannot"
        " fork)\n"
        "      --strict              exit nonzero on warnings too\n"
        "  trace <action> <file>     inspect / transform a recorded trace\n"
        "                            (text or binary — detected by magic):\n"
        "      info                  header + per-record summary\n"
        "      convert               rewrite as the other format (or --to"
        " F);\n"
        "                            needs --out FILE\n"
        "      slice                 extract records [--first N, +--count"
        " K);\n"
        "                            binary inputs seek via the record"
        " index\n"
        "                            instead of parsing the prefix; needs\n"
        "                            --out FILE (--to F overrides the"
        " format)\n"
        "\n"
        "<scenario> is a built-in name (see list) or a scenario file path.\n"
        "A scenario [checkpoint] section (at_cycle, path) makes 'run'"
        " snapshot\n"
        "mid-flight and keep going.  A master with 'pattern = trace' and\n"
        "'trace = FILE' replays a recorded transaction stream; run, sweep,\n"
        "checkpoint and resume all accept trace-driven scenarios.\n";
  return code;
}

void print_run(const core::SimResult& r, bool csv, bool quiet) {
  std::cout << r.model << ": " << (r.finished ? "finished" : "TIMED OUT")
            << " at cycle " << r.cycles << ", " << r.completed
            << " transactions, " << r.protocol_errors << " protocol errors, "
            << r.qos_warnings << " QoS warnings, "
            << stats::fmt_double(core::kcycles_per_sec(r), 0) << " kcycles/s\n";
  if (r.protocol_errors != 0 && !r.first_violations.empty()) {
    std::cout << r.first_violations << "\n";
  }
  if (quiet) {
    return;
  }
  std::cout << "\n";
  if (csv) {
    stats::print_csv(std::cout, r.profile);
  } else {
    stats::print_report(std::cout, r.profile, r.model + " run profile");
  }
  std::cout << "\n";
}

/// Run `p` up to `at_cycle`, write the self-describing checkpoint to
/// `path`, and report — warning when max_cycles stopped the run short of
/// the requested cycle (the snapshot is then taken earlier than asked).
void run_to_checkpoint(core::Platform& p, const core::PlatformConfig& cfg,
                       sim::Cycle at_cycle, const std::string& path) {
  p.run(at_cycle > p.now() ? at_cycle - p.now() : 0);
  core::write_checkpoint_file(path, p, scenario::serialize(cfg));
  std::cout << "checkpoint written to " << path << " at cycle " << p.now()
            << " (" << core::to_string(p.model()) << ", "
            << (p.finished() ? "workload already drained" : "mid-run")
            << ")\n";
  if (p.now() < at_cycle && !p.finished()) {
    std::cerr << "note: max_cycles (" << cfg.max_cycles
              << ") stopped the run before cycle " << at_cycle << "\n";
  }
}

/// Write every master's captured stream to `dir`/masterK.trace plus a
/// ready-to-run `dir`/replay.scenario whose masters replay the captures.
/// `format` picks the trace encoding ("text" or "bin"); replay
/// auto-detects either, so the scenario is identical in both cases.
void write_capture_dir(const core::Platform& p,
                       const core::PlatformConfig& cfg,
                       const std::string& dir, const std::string& format) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const bool bin = format == "bin";
  core::PlatformConfig replay = cfg;
  for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
    const std::string path =
        (fs::path(dir) / ("master" + std::to_string(m) + ".trace")).string();
    std::ofstream os(path, bin ? std::ios::binary : std::ios::out);
    if (!os) {
      throw std::runtime_error("cannot open '" + path + "' for writing");
    }
    const traffic::Script& captured =
        p.capture(static_cast<ahb::MasterId>(m)).captured();
    if (bin) {
      traffic::save_trace_bin(os, captured);
    } else {
      traffic::save_trace(os, captured);
    }
    traffic::StimulusSpec& spec = replay.masters[m].traffic;
    spec.source = traffic::StimulusSource::kTrace;
    spec.trace_path = path;
    spec.trace_text.clear();
  }
  const std::string scn = (fs::path(dir) / "replay.scenario").string();
  std::ofstream os(scn);
  if (!os) {
    throw std::runtime_error("cannot open '" + scn + "' for writing");
  }
  os << scenario::serialize(replay);
  std::cout << "captured " << cfg.masters.size() << " master trace(s) to "
            << dir << "\nreplay with: ahbp_sim run " << scn
            << " [--model tlm|rtl|both]\n";
}

/// One model's share of `run`: checkpoint mid-flight when the scenario
/// asks for it, capture when requested, then run to completion.  `tl` and
/// `sp` may be shared between both models of a `--model both` run (each
/// model registers its own timeline process / "tlm."-vs-"rtl." phases).
core::SimResult run_model(const core::PlatformConfig& cfg,
                          core::ModelKind kind, std::ostream* vcd_os,
                          const std::string& capture_dir,
                          const std::string& capture_format,
                          const std::string& checkpoint_path,
                          obs::Timeline* tl, obs::SelfProfiler* sp,
                          bool progress) {
  core::Platform p(cfg, kind);
  if (vcd_os != nullptr) {
    p.enable_vcd(*vcd_os);
  }
  if (!capture_dir.empty()) {
    p.enable_capture();
  }
  if (tl != nullptr) {
    p.enable_timeline(*tl);
  }
  if (sp != nullptr) {
    p.enable_self_profile(*sp);
  }
  if (progress) {
    p.set_progress(&std::cerr);
  }
  if (cfg.checkpoint.enabled()) {
    run_to_checkpoint(p, cfg, cfg.checkpoint.at_cycle, checkpoint_path);
  }
  p.run_to_completion();
  if (tl != nullptr) {
    tl->finalize(p.now());
  }
  if (!capture_dir.empty()) {
    write_capture_dir(p, cfg, capture_dir, capture_format);
  }
  return p.result();
}

/// Render the self-profiler's per-phase table (sorted by registration
/// order: platform setup first, then kernel components).
void print_self_profile(const obs::SelfProfiler& sp) {
  std::cout << "self-profile ("
            << stats::fmt_double(static_cast<double>(sp.total_ns()) / 1e6, 2)
            << " ms instrumented):\n";
  stats::TextTable t({"phase", "calls", "total ms", "avg us"});
  for (const auto& ph : sp.phases()) {
    const double avg_us =
        ph.calls == 0 ? 0.0
                      : static_cast<double>(ph.ns) / 1e3 /
                            static_cast<double>(ph.calls);
    t.add_row({ph.name, std::to_string(ph.calls),
               stats::fmt_double(static_cast<double>(ph.ns) / 1e6, 2),
               stats::fmt_double(avg_us, 3)});
  }
  t.print(std::cout);
  std::cout << "\n";
}

int cmd_list() {
  stats::TextTable t({"name", "description"});
  for (const auto& e : scenario::ScenarioRegistry::builtin().entries()) {
    t.add_row({e.name, e.description});
  }
  t.print(std::cout);
  std::cout << "\nTable-1 rows also answer to letter aliases"
               " (table1/cpu-a == table1/cpu-1).\n";

  // Registered captures: anything `run --register NAME` installed under
  // captures/ in the current directory answers to `run workload/NAME`.
  namespace fs = std::filesystem;
  std::vector<std::string> workloads;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator("captures", ec)) {
    if (entry.is_directory() &&
        fs::exists(entry.path() / "replay.scenario")) {
      workloads.push_back(entry.path().filename().string());
    }
  }
  if (!workloads.empty()) {
    std::sort(workloads.begin(), workloads.end());
    std::cout << "\nregistered workloads (captures/ in this directory):\n";
    for (const std::string& w : workloads) {
      std::cout << "  workload/" << w << "\n";
    }
  }
  return 0;
}

int cmd_show(const std::string& name) {
  std::cout << scenario::serialize(scenario::load_scenario(name));
  return 0;
}

int cmd_run(const std::string& name, const std::string& model_s,
            unsigned items, std::uint64_t seed, const std::string& vcd_path,
            std::string capture_dir, const std::string& capture_format,
            const std::string& register_name, bool csv, bool quiet,
            const std::string& timeline_path,
            const std::string& stats_json_path, bool progress,
            bool self_profile) {
  sweep::Model model = sweep::Model::kTlm;
  if (!sweep::model_from_string(model_s, model)) {
    std::cerr << "unknown model '" << model_s << "' (tlm, rtl, both)\n";
    return 2;
  }
  if (!register_name.empty()) {
    // A registered workload is just a capture installed at the well-known
    // path `run workload/NAME` resolves (scenario/registry.cpp).
    if (!capture_dir.empty()) {
      std::cerr << "--register picks the capture destination itself"
                   " (captures/" << register_name << "); drop"
                   " --capture-trace\n";
      return 2;
    }
    if (register_name.find('/') != std::string::npos ||
        register_name.find("..") != std::string::npos ||
        register_name[0] == '-') {
      std::cerr << "--register needs a plain name (no '/', '..' or leading"
                   " '-'), got '" << register_name << "'\n";
      return 2;
    }
    capture_dir = "captures/" + register_name;
  }
  const core::PlatformConfig cfg = scenario::load_scenario(name, items, seed);
  if (cfg.masters.empty()) {
    std::cerr << "scenario '" << name << "' defines no masters\n";
    return 2;
  }
  if (!vcd_path.empty() && model == sweep::Model::kTlm) {
    std::cerr << "--vcd needs the signal-level model (--model rtl|both)\n";
    return 2;
  }
  if (!capture_dir.empty() && model == sweep::Model::kBoth) {
    // Captured gaps are one model's observed think times; pick whose.
    std::cerr << "--capture-trace records one model's stream: pick --model"
                 " tlm or rtl (the capture replays in both)\n";
    return 2;
  }
  if (capture_format != "text" && capture_format != "bin") {
    std::cerr << "--trace-format must be text or bin, got '" << capture_format
              << "'\n";
    return 2;
  }

  // A scenario [checkpoint] section makes the run snapshot mid-flight and
  // continue; resume later picks the snapshot up.  The timeline and the
  // self-profiler are shared across models: one trace file with a "tlm"
  // and an "rtl" process, one phase table with both prefixes.
  obs::Timeline timeline;
  obs::Timeline* tl = timeline_path.empty() ? nullptr : &timeline;
  obs::SelfProfiler profiler;
  obs::SelfProfiler* sp = self_profile ? &profiler : nullptr;

  core::SimResult tlm, rtl;
  bool ran_tlm = false, ran_rtl = false;
  if (model != sweep::Model::kRtl) {
    tlm = run_model(cfg, core::ModelKind::kTlm, nullptr, capture_dir,
                    capture_format, cfg.checkpoint.path, tl, sp, progress);
    ran_tlm = true;
    print_run(tlm, csv, quiet);
  }
  if (model != sweep::Model::kTlm) {
    std::ofstream vcd;
    std::ostream* vcd_os = nullptr;
    if (!vcd_path.empty()) {
      vcd.open(vcd_path);
      if (!vcd) {
        std::cerr << "cannot open '" << vcd_path << "' for writing\n";
        return 2;
      }
      vcd_os = &vcd;
    }
    // Both models run from one scenario; keep their snapshots apart.
    const std::string ckpt_path = model == sweep::Model::kBoth
                                      ? cfg.checkpoint.path + ".rtl"
                                      : cfg.checkpoint.path;
    rtl = run_model(cfg, core::ModelKind::kRtl, vcd_os, capture_dir,
                    capture_format, ckpt_path, tl, sp, progress);
    ran_rtl = true;
    print_run(rtl, csv, quiet);
    if (vcd_os != nullptr) {
      std::cout << "waveform written to " << vcd_path
                << " (open with gtkwave)\n";
    }
  }

  if (tl != nullptr) {
    std::ofstream os(timeline_path);
    if (!os) {
      std::cerr << "cannot open '" << timeline_path << "' for writing\n";
      return 2;
    }
    timeline.write(os);
    std::cout << "timeline written to " << timeline_path
              << " (load in Perfetto or chrome://tracing)\n";
  }
  if (!stats_json_path.empty()) {
    std::ofstream os(stats_json_path);
    if (!os) {
      std::cerr << "cannot open '" << stats_json_path << "' for writing\n";
      return 2;
    }
    os << "{\"runs\": [";
    if (ran_tlm) {
      core::write_stats_json(os, tlm);
    }
    if (ran_rtl) {
      if (ran_tlm) {
        os << ", ";
      }
      core::write_stats_json(os, rtl);
    }
    os << "]}\n";
    std::cout << "stats written to " << stats_json_path << "\n";
  }
  if (sp != nullptr) {
    print_self_profile(profiler);
  }
  if (ran_tlm && ran_rtl && rtl.cycles != 0) {
    std::cout << "tlm vs rtl: " << tlm.cycles << " vs " << rtl.cycles
              << " cycles, error "
              << stats::fmt_percent(sweep::cycle_error(tlm, rtl)) << "\n";
  }

  const bool ok = (!ran_tlm || (tlm.finished && tlm.protocol_errors == 0)) &&
                  (!ran_rtl || (rtl.finished && rtl.protocol_errors == 0));
  if (ok && !register_name.empty()) {
    std::cout << "registered workload '" << register_name
              << "': replay with `ahbp_sim run workload/" << register_name
              << "`\n";
  }
  return ok ? 0 : 1;
}

int cmd_checkpoint(const std::string& name, const std::string& model_s,
                   unsigned items, std::uint64_t seed, std::uint64_t at,
                   const std::string& out) {
  core::ModelKind model = core::ModelKind::kTlm;
  if (!core::model_kind_from_string(model_s, model)) {
    std::cerr << "unknown model '" << model_s
              << "' (checkpoint snapshots one model: tlm or rtl)\n";
    return 2;
  }
  core::PlatformConfig cfg = scenario::load_scenario(name, items, seed);
  if (cfg.masters.empty()) {
    std::cerr << "scenario '" << name << "' defines no masters\n";
    return 2;
  }
  const sim::Cycle at_cycle = at != 0 ? at : cfg.checkpoint.at_cycle;
  const std::string path = !out.empty() ? out : cfg.checkpoint.path;
  if (at_cycle == 0 || path.empty()) {
    std::cerr << "checkpoint needs --at N and --out FILE (or a scenario"
                 " [checkpoint] section)\n";
    return 2;
  }

  core::Platform p(cfg, model);
  run_to_checkpoint(p, cfg, at_cycle, path);
  return 0;
}

int cmd_resume(const std::string& path, const std::string& vcd_path, bool csv,
               bool quiet) {
  state::StateReader r = state::StateReader::from_file(path);
  const core::CheckpointInfo info = core::read_checkpoint_header(r);
  core::ModelKind model = core::ModelKind::kTlm;
  if (!core::model_kind_from_string(info.model, model)) {
    std::cerr << "checkpoint names unknown model '" << info.model << "'\n";
    return 2;
  }
  if (!vcd_path.empty() && model != core::ModelKind::kRtl) {
    std::cerr << "--vcd needs an rtl checkpoint\n";
    return 2;
  }
  core::PlatformConfig cfg = scenario::parse(info.scenario_text);
  // Trace-backed masters resume from the embedded capture — the original
  // trace files need not exist anymore (self-describing snapshot).
  core::apply_embedded_traces(cfg, info);

  core::Platform p(cfg, model);
  std::ofstream vcd;
  if (!vcd_path.empty()) {
    vcd.open(vcd_path);
    if (!vcd) {
      std::cerr << "cannot open '" << vcd_path << "' for writing\n";
      return 2;
    }
    p.enable_vcd(vcd);
  }
  p.restore_state(r);
  r.expect_end();
  std::cout << "resumed " << core::to_string(model) << " from cycle "
            << p.now() << " (" << path << ")\n";
  p.run_to_completion();
  const core::SimResult res = p.result();
  print_run(res, csv, quiet);
  if (!vcd_path.empty()) {
    std::cout << "waveform written to " << vcd_path
              << " (open with gtkwave)\n";
  }
  return res.finished && res.protocol_errors == 0 ? 0 : 1;
}

int cmd_sweep(const std::string& path, const std::string& model_s,
              unsigned jobs, unsigned farm_workers,
              const std::string& csv_path, bool speed,
              double max_cycle_error, std::uint64_t warmup_cycles,
              bool progress, bool sensitivity) {
  sweep::Model model = sweep::Model::kTlm;
  if (!sweep::model_from_string(model_s, model)) {
    std::cerr << "unknown model '" << model_s << "' (tlm, rtl, both)\n";
    return 2;
  }
  if (max_cycle_error >= 0.0 && model != sweep::Model::kBoth) {
    std::cerr << "--max-cycle-error needs --model both\n";
    return 2;
  }
  const sweep::SweepSpec spec = sweep::parse_spec_file(path);
  const auto points = sweep::expand(spec);
  std::cout << "sweep: " << points.size() << " configurations ("
            << spec.axes.size() << " axes), base '" << spec.base << "'";
  if (warmup_cycles > 0) {
    std::cout << ", forked from a " << warmup_cycles
              << "-cycle warm-up of the base";
  }
  if (farm_workers > 0) {
    std::cout << ", farmed across " << farm_workers << " worker process(es)";
  }
  std::cout << "\n\n";

  std::mutex progress_mu;
  std::vector<sweep::PointOutcome> outcomes;
  if (farm_workers > 0) {
    farm::FarmOptions opts;
    opts.workers = farm_workers;
    opts.warmup_cycles = warmup_cycles;
    // Re-exec this binary as the worker so the farm exercises the same
    // process-boundary path a remote (socketed) deployment would; if
    // /proc/self/exe is unreadable the coordinator falls back to fork-only
    // workers, which share the already-loaded image.
    char exe_buf[4096];
    const ssize_t exe_len =
        ::readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
    if (exe_len > 0) {
      exe_buf[exe_len] = '\0';
      opts.worker_command = {exe_buf, "farm-worker"};
    }
    if (progress) {
      opts.progress = [&progress_mu](std::size_t done, std::size_t total) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        std::cerr << "# sweep: " << done << "/" << total << " points done\n";
      };
    }
    outcomes = farm::Coordinator(opts).run(spec, model);
  } else {
    sweep::SweepRunner runner(jobs);
    if (progress) {
      runner.set_progress(
          [&progress_mu](std::size_t done, std::size_t total) {
            const std::lock_guard<std::mutex> lock(progress_mu);
            std::cerr << "# sweep: " << done << "/" << total
                      << " points done\n";
          });
    }
    outcomes = runner.run(points, model, spec.base_config, warmup_cycles);
  }

  stats::TextTable table = sweep::aggregate_table(outcomes, model, speed);
  table.print(std::cout);

  if (sensitivity) {
    if (spec.axes.empty()) {
      std::cout << "\nsensitivity: the spec has no [sweep] axes — nothing"
                   " varies\n";
    } else {
      for (const bool use_rtl : {false, true}) {
        if ((use_rtl && model == sweep::Model::kTlm) ||
            (!use_rtl && model == sweep::Model::kRtl)) {
          continue;
        }
        std::cout << "\nper-axis sensitivity ("
                  << (use_rtl ? "rtl" : "tlm") << " cycles):\n";
        sweep::sensitivity_table(
            sweep::sensitivity(spec, outcomes, use_rtl))
            .print(std::cout);
      }
    }
  }

  if (!csv_path.empty()) {
    std::ofstream csv_os(csv_path);
    if (!csv_os) {
      std::cerr << "cannot open '" << csv_path << "' for writing\n";
      return 2;
    }
    sweep::write_point_csv(csv_os, outcomes, model);
    std::cout << "\nper-point outcomes written to " << csv_path << "\n";
  }

  int failures = 0;
  for (const auto& o : outcomes) {
    bool bad =
        !o.error.empty() ||
        (o.has_tlm && (!o.tlm.finished || o.tlm.protocol_errors != 0)) ||
        (o.has_rtl && (!o.rtl.finished || o.rtl.protocol_errors != 0));
    // Accuracy gate: the Table-1 contract says the TLM tracks the RTL
    // cycle count; a point whose error exceeds the budget is a failure.
    if (!bad && max_cycle_error >= 0.0 && o.has_tlm && o.has_rtl &&
        o.cycle_error() * 100.0 > max_cycle_error) {
      std::cout << "point " << o.index << " (" << o.label
                << "): cycle error "
                << stats::fmt_percent(o.cycle_error()) << " exceeds "
                << stats::fmt_double(max_cycle_error, 2) << "%\n";
      bad = true;
    }
    failures += bad ? 1 : 0;
  }
  if (failures != 0) {
    std::cout << "\n" << failures << " of " << outcomes.size()
              << " configurations failed\n";
  }
  return failures == 0 ? 0 : 1;
}

/// Load a trace of either format into a Script.  Binary inputs go through
/// the zero-copy loader; text inputs are parsed from the mapped bytes.
traffic::Script load_any_trace(std::string_view bytes) {
  if (traffic::is_trace_bin(bytes)) {
    return traffic::load_trace_bin(bytes, 0);
  }
  std::istringstream is{std::string(bytes)};
  return traffic::load_trace(is, 0);
}

/// Write `script` to `path` in `format` ("text" or "bin").
void write_trace_file(const std::string& path, const std::string& format,
                      const traffic::Script& script) {
  std::ofstream os(path,
                   format == "bin" ? std::ios::binary : std::ios::out);
  if (!os) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  if (format == "bin") {
    traffic::save_trace_bin(os, script);
  } else {
    traffic::save_trace(os, script);
  }
  if (!os) {
    throw std::runtime_error("error writing '" + path + "'");
  }
}

int cmd_trace(const std::string& action, const std::string& path,
              const std::string& out_path, std::string to_format,
              std::uint64_t first, std::uint64_t count) {
  if (action != "info" && action != "convert" && action != "slice") {
    std::cerr << "unknown trace action '" << action
              << "' (info, convert, slice)\n";
    return 2;
  }
  if (!to_format.empty() && to_format != "text" && to_format != "bin") {
    std::cerr << "--to must be text or bin, got '" << to_format << "'\n";
    return 2;
  }

  // mmap where possible: info/slice on a multi-GB binary trace touch the
  // header, one index entry and the requested records — nothing else.
  const traffic::MappedTrace file(path);
  const std::string_view bytes = file.bytes();
  const bool bin = traffic::is_trace_bin(bytes);

  if (action == "info") {
    std::cout << "file:    " << path << " (" << bytes.size() << " bytes, "
              << (file.zero_copy() ? "mmap" : "buffered") << ")\n";
    traffic::Script script;
    if (bin) {
      const traffic::TraceBinInfo info = traffic::trace_bin_info(bytes);
      std::cout << "format:  binary v" << info.version << " ("
                << (info.indexed() ? "indexed" : "no index") << ", "
                << info.payload_bytes << " payload bytes)\n";
      script = traffic::load_trace_bin(bytes, 0);
    } else {
      std::cout << "format:  text\n";
      script = load_any_trace(bytes);
    }
    std::uint64_t reads = 0, writes = 0, beats = 0, moved = 0, gaps = 0;
    for (const traffic::TrafficItem& item : script) {
      (item.txn.dir == ahb::Dir::kRead ? reads : writes) += 1;
      beats += item.txn.beats;
      moved += item.txn.bytes();
      gaps += item.gap;
    }
    std::cout << "records: " << script.size() << " (" << reads << " reads, "
              << writes << " writes)\n"
              << "beats:   " << beats << " (" << moved << " bytes moved)\n"
              << "gaps:    " << gaps << " think-time cycles\n";
    if (!script.empty()) {
      ahb::Addr lo = script[0].txn.addr, hi = script[0].txn.addr;
      for (const traffic::TrafficItem& item : script) {
        lo = std::min(lo, item.txn.addr);
        hi = std::max(hi, item.txn.addr + item.txn.bytes());
      }
      std::cout << "addresses: [0x" << std::hex << lo << ", 0x" << hi
                << std::dec << ")\n";
    }
    return 0;
  }

  if (out_path.empty()) {
    std::cerr << "trace " << action << " needs --out FILE\n";
    return 2;
  }

  if (action == "convert") {
    // Default: the other format — converting is most often a round trip.
    if (to_format.empty()) {
      to_format = bin ? "text" : "bin";
    }
    const traffic::Script script = load_any_trace(bytes);
    write_trace_file(out_path, to_format, script);
    std::cout << "converted " << script.size() << " record(s): "
              << (bin ? "bin" : "text") << " -> " << to_format << " ("
              << out_path << ")\n";
    return 0;
  }

  // slice: binary inputs seek to record `first` through the index; text
  // inputs have no seekable structure, so the whole file is parsed first.
  if (to_format.empty()) {
    to_format = bin ? "bin" : "text";
  }
  traffic::Script window;
  if (bin) {
    window = traffic::load_trace_bin_window(bytes, 0, first, count);
  } else {
    traffic::Script all = load_any_trace(bytes);
    const std::uint64_t from = std::min<std::uint64_t>(first, all.size());
    const std::uint64_t take =
        std::min<std::uint64_t>(count, all.size() - from);
    window.assign(all.begin() + static_cast<std::ptrdiff_t>(from),
                  all.begin() + static_cast<std::ptrdiff_t>(from + take));
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i].txn.id = i + 1;  // a slice is a standalone script
    }
  }
  write_trace_file(out_path, to_format, window);
  std::cout << "sliced records [" << first << ", " << first + window.size()
            << ") of " << path << " -> " << out_path << " (" << to_format
            << ", " << window.size() << " record(s))\n";
  return 0;
}

int cmd_lint(const std::string& ref, std::uint64_t warmup_cycles,
             bool strict) {
  sweep::LintOptions opts;
  opts.warmup_cycles = warmup_cycles;
  const sweep::LintReport report = sweep::lint_ref(ref, opts);
  sweep::write_report(std::cout, report);
  if (!report.ok()) {
    return 1;
  }
  return strict && report.warnings() != 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return usage(std::cerr, 2);
  }
  const std::string cmd = args[0];

  // Hidden entry point: `ahbp_sim farm-worker [--in FD --out FD]` is what
  // the sweep-farm coordinator execs (farm/coordinator.hpp).  It serves one
  // connection on the given descriptors (default stdin/stdout) and exits;
  // it is not part of the user-facing CLI, so it bypasses the uniform
  // option machinery below.
  if (cmd == "farm-worker") {
    int in_fd = 0, out_fd = 1;
    for (std::size_t i = 1; i + 1 < args.size(); i += 2) {
      if (args[i] == "--in") {
        in_fd = std::atoi(args[i + 1].c_str());
      } else if (args[i] == "--out") {
        out_fd = std::atoi(args[i + 1].c_str());
      } else {
        std::cerr << "farm-worker: unknown option '" << args[i] << "'\n";
        return 2;
      }
    }
    try {
      farm::worker_loop(in_fd, out_fd);
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "farm-worker: " << e.what() << "\n";
      return 3;
    }
  }

  // Collect options and positionals uniformly; which options each command
  // accepts is checked afterwards so irrelevant flags error instead of
  // being silently ignored.
  std::vector<std::string> given_options;
  std::vector<std::string> positionals;  // most commands take 1; trace takes 2
  std::string model = "tlm";
  std::string vcd_path;
  std::string csv_path;      // sweep --csv FILE
  std::string out_path;      // checkpoint/trace --out FILE
  std::string capture_dir;   // run --capture-trace DIR
  std::string capture_format = "text";  // run --trace-format text|bin
  std::string to_format;     // trace --to text|bin (empty = action default)
  std::string timeline_path;    // run --timeline FILE
  std::string stats_json_path;  // run --stats-json FILE
  unsigned items = 0;
  std::uint64_t seed = 0;
  std::uint64_t at_cycle = 0;        // checkpoint --at N
  std::uint64_t warmup_cycles = 0;   // sweep --warmup-cycles N
  std::uint64_t first = 0;                    // trace slice --first N
  std::uint64_t count = ~std::uint64_t{0};    // trace slice --count K
  unsigned jobs = 1;
  unsigned farm_workers = 0;   // sweep --farm-workers N (0 = in-process)
  std::string register_name;   // run --register NAME
  bool explicit_jobs = false;
  bool csv = false, quiet = false, speed = false;
  bool progress = false, self_profile = false, strict = false;
  bool sensitivity = false;    // sweep --sensitivity
  double max_cycle_error = -1.0;  // negative = gate off

  const auto need_value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) {
      std::cerr << args[i] << " needs a value\n";
      std::exit(2);
    }
    return args[++i];
  };
  // Digits only: stoul("-1") would wrap to a huge count and try to
  // generate billions of transactions.
  const auto need_unsigned = [&](std::size_t& i,
                                 std::uint64_t max) -> std::uint64_t {
    const std::string flag = args[i];
    const std::string v = need_value(i);
    if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << flag << " needs a non-negative integer, got '" << v
                << "'\n";
      std::exit(2);
    }
    try {
      const std::uint64_t x = std::stoull(v);
      if (x > max) {
        throw std::out_of_range(v);
      }
      return x;
    } catch (const std::exception&) {
      std::cerr << flag << " value out of range: '" << v << "'\n";
      std::exit(2);
    }
  };

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (!a.empty() && a[0] == '-' && a != "--help" && a != "-h") {
      given_options.push_back(a);
    }
    if (a == "--model") {
      model = need_value(i);
    } else if (a == "--items") {
      items = static_cast<unsigned>(need_unsigned(i, 100'000'000));
      if (items == 0) {
        std::cerr << "--items must be nonzero (omit the flag for the"
                     " scenario's default)\n";
        return 2;
      }
    } else if (a == "--seed") {
      seed = need_unsigned(i, ~std::uint64_t{0});
      if (seed == 0) {
        std::cerr << "--seed must be nonzero (omit the flag for the"
                     " scenario's default)\n";
        return 2;
      }
    } else if (a == "--vcd") {
      vcd_path = need_value(i);
    } else if (a == "--capture-trace") {
      capture_dir = need_value(i);
      if (capture_dir.empty() || capture_dir[0] == '-') {
        std::cerr << "--capture-trace needs a directory path, got '"
                  << capture_dir << "'\n";
        return 2;
      }
    } else if (a == "--trace-format") {
      capture_format = need_value(i);
    } else if (a == "--to") {
      to_format = need_value(i);
    } else if (a == "--first") {
      first = need_unsigned(i, ~std::uint64_t{0});
    } else if (a == "--count") {
      count = need_unsigned(i, ~std::uint64_t{0});
    } else if (a == "--at") {
      at_cycle = need_unsigned(i, ~std::uint64_t{0});
      if (at_cycle == 0) {
        std::cerr << "--at must be a nonzero cycle\n";
        return 2;
      }
    } else if (a == "--out") {
      out_path = need_value(i);
    } else if (a == "--warmup-cycles") {
      warmup_cycles = need_unsigned(i, ~std::uint64_t{0});
    } else if (a == "--jobs") {
      jobs = static_cast<unsigned>(need_unsigned(i, 4096));
      explicit_jobs = true;
    } else if (a == "--farm-workers") {
      farm_workers = static_cast<unsigned>(need_unsigned(i, 4096));
      if (farm_workers == 0) {
        std::cerr << "--farm-workers must be nonzero (omit the flag for the"
                     " in-process runner)\n";
        return 2;
      }
    } else if (a == "--register") {
      register_name = need_value(i);
      if (register_name.empty() || register_name[0] == '-') {
        std::cerr << "--register needs a workload name, got '"
                  << register_name << "'\n";
        return 2;
      }
    } else if (a == "--sensitivity") {
      sensitivity = true;
    } else if (a == "--max-cycle-error") {
      const std::string flag = a;
      const std::string v = need_value(i);
      try {
        std::size_t pos = 0;
        max_cycle_error = std::stod(v, &pos);
        // The negated form also rejects NaN (which would silently
        // disable the gate: any comparison against NaN is false).
        if (pos != v.size() || !(max_cycle_error >= 0.0) ||
            !std::isfinite(max_cycle_error)) {
          throw std::invalid_argument(v);
        }
      } catch (const std::exception&) {
        std::cerr << flag << " needs a non-negative percentage, got '" << v
                  << "'\n";
        return 2;
      }
    } else if (a == "--csv") {
      // `sweep --csv FILE` writes per-point outcomes; for run/resume the
      // flag switches the on-screen report to CSV.
      if (cmd == "sweep") {
        csv_path = need_value(i);
        if (!csv_path.empty() && csv_path[0] == '-') {
          std::cerr << "sweep --csv needs a file path, got '" << csv_path
                    << "'\n";
          return 2;
        }
      } else {
        csv = true;
      }
    } else if (a == "--timeline") {
      timeline_path = need_value(i);
      if (timeline_path.empty() || timeline_path[0] == '-') {
        std::cerr << "--timeline needs a file path, got '" << timeline_path
                  << "'\n";
        return 2;
      }
    } else if (a == "--stats-json") {
      stats_json_path = need_value(i);
      if (stats_json_path.empty() || stats_json_path[0] == '-') {
        std::cerr << "--stats-json needs a file path, got '"
                  << stats_json_path << "'\n";
        return 2;
      }
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--progress") {
      progress = true;
    } else if (a == "--self-profile") {
      self_profile = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--speed") {
      speed = true;
    } else if (a == "--help" || a == "-h") {
      return usage(std::cout, 0);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown option '" << a << "'\n";
      return usage(std::cerr, 2);
    } else if (positionals.size() < (cmd == "trace" ? 2u : 1u)) {
      positionals.push_back(a);
    } else {
      std::cerr << "unexpected argument '" << a << "'\n";
      return usage(std::cerr, 2);
    }
  }
  const std::string positional = positionals.empty() ? "" : positionals[0];

  const auto check_options =
      [&](std::initializer_list<const char*> allowed) -> bool {
    for (const std::string& o : given_options) {
      bool ok = false;
      for (const char* a : allowed) {
        ok = ok || o == a;
      }
      if (!ok) {
        std::cerr << "'" << cmd << "' does not take " << o << "\n";
        return false;
      }
    }
    return true;
  };

  try {
    if (cmd == "list") {
      if (!check_options({})) {
        return 2;
      }
      return cmd_list();
    }
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      return usage(std::cout, 0);
    }
    if (positional.empty()) {
      std::cerr << cmd << " needs a scenario argument\n";
      return usage(std::cerr, 2);
    }
    if (cmd == "show") {
      if (!check_options({})) {
        return 2;
      }
      return cmd_show(positional);
    }
    if (cmd == "run") {
      if (!check_options({"--model", "--items", "--seed", "--vcd",
                          "--capture-trace", "--trace-format", "--register",
                          "--csv", "--quiet", "--timeline", "--stats-json",
                          "--progress", "--self-profile"})) {
        return 2;
      }
      return cmd_run(positional, model, items, seed, vcd_path, capture_dir,
                     capture_format, register_name, csv, quiet,
                     timeline_path, stats_json_path, progress, self_profile);
    }
    if (cmd == "trace") {
      if (!check_options({"--out", "--to", "--first", "--count"})) {
        return 2;
      }
      if (positionals.size() < 2) {
        std::cerr << "trace needs an action and a file: trace"
                     " info|convert|slice <file>\n";
        return 2;
      }
      return cmd_trace(positionals[0], positionals[1], out_path, to_format,
                       first, count);
    }
    if (cmd == "checkpoint") {
      if (!check_options({"--model", "--items", "--seed", "--at", "--out"})) {
        return 2;
      }
      return cmd_checkpoint(positional, model, items, seed, at_cycle,
                            out_path);
    }
    if (cmd == "resume") {
      if (!check_options({"--vcd", "--csv", "--quiet"})) {
        return 2;
      }
      return cmd_resume(positional, vcd_path, csv, quiet);
    }
    if (cmd == "sweep") {
      if (!check_options({"--jobs", "--farm-workers", "--model", "--csv",
                          "--speed", "--max-cycle-error", "--warmup-cycles",
                          "--progress", "--sensitivity"})) {
        return 2;
      }
      if (farm_workers > 0 && explicit_jobs) {
        std::cerr << "--jobs (threads) and --farm-workers (processes) are"
                     " two parallelism modes: pick one\n";
        return 2;
      }
      return cmd_sweep(positional, model, jobs, farm_workers, csv_path,
                       speed, max_cycle_error, warmup_cycles, progress,
                       sensitivity);
    }
    if (cmd == "lint") {
      if (!check_options({"--warmup-cycles", "--strict"})) {
        return 2;
      }
      return cmd_lint(positional, warmup_cycles, strict);
    }
    std::cerr << "unknown command '" << cmd << "'\n";
    return usage(std::cerr, 2);
  } catch (const scenario::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
