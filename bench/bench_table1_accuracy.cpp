// Reproduces **Table 1** of the paper: cycle counts of the pin-accurate
// reference model vs the AHB+ TLM over twelve master-traffic mixes, with
// the per-row difference and the suite average.
//
// Paper claim: "the average accuracy difference is below 3%" / "97% of
// accuracy on average".  Absolute cycle counts differ from the paper's
// (their workloads and RTL are proprietary); the claim under test is the
// per-row difference staying in the low single digits and the average
// staying below ~3%.

#include <cstdlib>
#include <iostream>

#include "core/compare.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 150;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  std::cout << "=== Table 1: Simulation results (RTL vs TLM cycle counts) ==="
            << "\n    " << items << " transactions/master, seed " << seed
            << ", 4 masters, all filters on, write buffer depth 4\n\n";

  const auto suite = core::compare_suite(core::table1_workloads(items, seed));

  stats::TextTable table(
      {"workload", "RTL cycles", "TLM cycles", "diff", "accuracy", "clean"});
  for (const auto& row : suite.rows) {
    table.add_row({row.name, std::to_string(row.rtl_cycles),
                   std::to_string(row.tlm_cycles),
                   stats::fmt_percent(row.error),
                   stats::fmt_percent(1.0 - row.error),
                   row.protocol_errors == 0 && row.both_finished ? "yes"
                                                                 : "NO"});
  }
  table.print(std::cout);

  std::cout << "\naverage difference : " << stats::fmt_percent(suite.average_error)
            << "   (paper: below 3%)\n";
  std::cout << "average accuracy   : "
            << stats::fmt_percent(1.0 - suite.average_error)
            << "   (paper: 97% on average)\n";
  std::cout << "worst row          : " << stats::fmt_percent(suite.worst_error)
            << "\n";

  // Machine-readable echo for harnesses.
  std::cout << "\ncsv:\n";
  stats::TextTable csv({"workload", "rtl_cycles", "tlm_cycles", "diff_pct"});
  for (const auto& row : suite.rows) {
    csv.add_row({row.name, std::to_string(row.rtl_cycles),
                 std::to_string(row.tlm_cycles),
                 stats::fmt_double(row.error * 100.0, 3)});
  }
  csv.print_csv(std::cout);

  bool ok = true;
  for (const auto& row : suite.rows) {
    ok = ok && row.both_finished && row.protocol_errors == 0;
  }
  if (!ok || suite.average_error > 0.06) {
    std::cout << "\nRESULT: FAIL (protocol errors or accuracy out of band)\n";
    return 1;
  }
  std::cout << "\nRESULT: OK\n";
  return 0;
}
