#include "ahb/qos.hpp"

#include <algorithm>

namespace ahbp::ahb {

void QosRegisterFile::refill_budgets() {
  for (std::size_t m = 0; m < configs_.size(); ++m) {
    const auto& cfg = configs_[m];
    auto& st = states_[m];
    // Each epoch a master earns `objective` tokens (RT masters use slack,
    // not budget, so their refill only matters if a filter chain runs with
    // the urgency filter disabled).  Debt carries over — a master that
    // overdrew its share pays it back before outranking others again —
    // but accumulation is capped at one epoch's allowance.
    const std::int64_t earn = static_cast<std::int64_t>(cfg.objective);
    st.budget = std::min(st.budget + earn, earn);
  }
}

std::int64_t QosRegisterFile::rt_slack(MasterId m, sim::Cycle now) const {
  const auto& cfg = config(m);
  const auto& st = state(m);
  if (!st.requesting) {
    return static_cast<std::int64_t>(cfg.objective);
  }
  const auto waited = static_cast<std::int64_t>(now - st.request_since);
  return static_cast<std::int64_t>(cfg.objective) - waited;
}

}  // namespace ahbp::ahb
