// Configuration-space properties: across the §3.7 parameter space (filter
// masks, write-buffer depths, pipelining/BI toggles, DDR presets, master
// counts) every run must drain, keep the protocol checkers silent, and
// conserve the workload's bytes.  These sweeps are the "flexibility and
// reusability" guarantee: no knob combination wedges the models.

#include <gtest/gtest.h>

#include <tuple>

#include "core/platform.hpp"
#include "core/workloads.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::core;

void expect_clean(const SimResult& r, const std::string& what,
                  std::uint64_t expect_txns) {
  EXPECT_TRUE(r.finished) << what << " did not drain";
  EXPECT_EQ(r.completed, expect_txns) << what;
  EXPECT_EQ(r.protocol_errors, 0u) << what << "\n" << r.first_violations;
}

class FilterMaskSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(FilterMaskSweep, TlmDrainsCleanUnderAnyMask) {
  PlatformConfig cfg = default_platform(3, 21, 25);
  cfg.masters[1].traffic.kind = traffic::PatternKind::kDma;
  cfg.masters[2].traffic.kind = traffic::PatternKind::kRandom;
  cfg.bus.filter_mask = GetParam();
  expect_clean(run_tlm(cfg), "mask=" + std::to_string(GetParam()), 75);
}

TEST_P(FilterMaskSweep, RtlDrainsCleanUnderAnyMask) {
  PlatformConfig cfg = default_platform(2, 21, 15);
  cfg.masters[1].traffic.kind = traffic::PatternKind::kDma;
  cfg.bus.filter_mask = GetParam();
  expect_clean(run_rtl(cfg), "mask=" + std::to_string(GetParam()), 30);
}

INSTANTIATE_TEST_SUITE_P(Masks, FilterMaskSweep,
                         ::testing::Values<std::uint8_t>(
                             ahb::kAllFilters, 0x7B /*no urgency*/,
                             0x6F /*no budget*/, 0x77 /*no bank*/,
                             0x5F /*no round-robin*/, 0x43, 0x41));

class DepthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DepthSweep, BothModelsCleanAtEveryDepth) {
  PlatformConfig cfg = default_platform(2, 33, 20);
  cfg.masters[0].traffic.read_ratio = 0.3;
  cfg.masters[1].traffic.kind = traffic::PatternKind::kDma;
  cfg.bus.write_buffer_enabled = GetParam() > 0;
  cfg.bus.write_buffer_depth = GetParam();
  expect_clean(run_tlm(cfg), "tlm depth=" + std::to_string(GetParam()), 40);
  expect_clean(run_rtl(cfg), "rtl depth=" + std::to_string(GetParam()), 40);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u));

class FeatureToggles
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(FeatureToggles, PipeliningAndBiCombinationsClean) {
  const auto [pipe, bi] = GetParam();
  PlatformConfig cfg = default_platform(3, 8, 20);
  cfg.masters[1].traffic.kind = traffic::PatternKind::kDma;
  cfg.bus.request_pipelining = pipe;
  cfg.bus.bi_hints_enabled = bi;
  const std::string what = std::string("pipe=") + (pipe ? "1" : "0") +
                           " bi=" + (bi ? "1" : "0");
  expect_clean(run_tlm(cfg), "tlm " + what, 60);
  expect_clean(run_rtl(cfg), "rtl " + what, 60);
}

INSTANTIATE_TEST_SUITE_P(Toggles, FeatureToggles,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(ConfigSweep, Ddr400PresetWorks) {
  PlatformConfig cfg = default_platform(2, 3, 20);
  cfg.timing = ddr::ddr400();
  expect_clean(run_tlm(cfg), "ddr400 tlm", 40);
  expect_clean(run_rtl(cfg), "ddr400 rtl", 40);
}

TEST(ConfigSweep, BankSerialMappingWorks) {
  PlatformConfig cfg = default_platform(2, 3, 20);
  cfg.geom.mapping = ddr::Mapping::kBankRowCol;
  expect_clean(run_tlm(cfg), "bank-serial tlm", 40);
  expect_clean(run_rtl(cfg), "bank-serial rtl", 40);
}

TEST(ConfigSweep, RefreshHeavyTimingClean) {
  PlatformConfig cfg = default_platform(2, 3, 25);
  cfg.timing.tREFI = 120;  // refresh every 120 cycles: heavy interference
  cfg.timing.tRFC = 24;
  expect_clean(run_tlm(cfg), "refresh tlm", 50);
  expect_clean(run_rtl(cfg), "refresh rtl", 50);
}

class MasterCountSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MasterCountSweep, ScalesFromOneToSix) {
  PlatformConfig cfg = default_platform(GetParam(), 13, 15);
  expect_clean(run_tlm(cfg), "tlm n=" + std::to_string(GetParam()),
               15ull * GetParam());
  expect_clean(run_rtl(cfg), "rtl n=" + std::to_string(GetParam()),
               15ull * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, MasterCountSweep,
                         ::testing::Values(1u, 2u, 4u, 6u));

TEST(ConfigSweep, WideBurstsAndSizesClean) {
  PlatformConfig cfg = default_platform(2, 55, 30);
  for (auto& m : cfg.masters) {
    m.traffic.kind = traffic::PatternKind::kRandom;  // all bursts/sizes
  }
  expect_clean(run_tlm(cfg), "random tlm", 60);
  expect_clean(run_rtl(cfg), "random rtl", 60);
}

TEST(ConfigSweep, TinyUrgencyThresholdStillLive) {
  PlatformConfig cfg = default_platform(3, 5, 20);
  cfg.masters[0].qos = {ahb::MasterClass::kRealTime, 16};
  cfg.masters[0].traffic.kind = traffic::PatternKind::kRtStream;
  cfg.bus.urgency_slack_threshold = 1;
  expect_clean(run_tlm(cfg), "tight urgency", 60);
}

TEST(ConfigSweep, LargeEpochAndZeroObjectiveMix) {
  PlatformConfig cfg = default_platform(3, 5, 20);
  cfg.masters[1].qos.objective = 0;  // best effort
  cfg.masters[2].qos.objective = 1;  // starvation-prone budget
  expect_clean(run_tlm(cfg), "budget extremes", 60);
  expect_clean(run_rtl(cfg), "budget extremes rtl", 60);
}

}  // namespace
