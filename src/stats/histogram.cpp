#include "stats/histogram.hpp"

#include <bit>

namespace ahbp::stats {

Log2Histogram::Log2Histogram() : counts_(64, 0) {}

void Log2Histogram::add(std::uint64_t v) noexcept {
  const unsigned k = v < 2 ? 0 : static_cast<unsigned>(std::bit_width(v) - 1);
  counts_[k < counts_.size() ? k : counts_.size() - 1] += 1;
  ++total_;
  summary_.add(v);
}

std::uint64_t Log2Histogram::bucket(unsigned k) const noexcept {
  return k < counts_.size() ? counts_[k] : 0;
}

std::uint64_t Log2Histogram::percentile_upper(double pct) const noexcept {
  if (total_ == 0) {
    return 0;
  }
  const double target = pct / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (unsigned k = 0; k < counts_.size(); ++k) {
    cum += counts_[k];
    if (static_cast<double>(cum) >= target) {
      return k == 0 ? 1 : (std::uint64_t{1} << (k + 1)) - 1;
    }
  }
  return summary_.max();
}

void Summary::save_state(state::StateWriter& w) const {
  w.put_u64(count_);
  w.put_u64(sum_);
  w.put_u64(min_);
  w.put_u64(max_);
}

void Summary::restore_state(state::StateReader& r) {
  count_ = r.get_u64();
  sum_ = r.get_u64();
  min_ = r.get_u64();
  max_ = r.get_u64();
}

void Log2Histogram::save_state(state::StateWriter& w) const {
  w.put_u64(counts_.size());
  for (const std::uint64_t c : counts_) {
    w.put_u64(c);
  }
  w.put_u64(total_);
  summary_.save_state(w);
}

void Log2Histogram::restore_state(state::StateReader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != counts_.size()) {
    throw state::StateError("Log2Histogram: bucket count mismatch");
  }
  for (std::uint64_t& c : counts_) {
    c = r.get_u64();
  }
  total_ = r.get_u64();
  summary_.restore_state(r);
}

}  // namespace ahbp::stats
