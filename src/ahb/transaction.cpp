#include "ahb/transaction.hpp"

#include "ahb/address.hpp"

namespace ahbp::ahb {

bool structurally_valid(const Transaction& t) noexcept {
  if (t.beats == 0) {
    return false;
  }
  // Alignment: AHB requires the address aligned to the transfer size.
  if (t.addr % size_bytes(t.size) != 0) {
    return false;
  }
  // Fixed-length bursts must carry exactly their architectural beat count.
  const unsigned fixed = burst_fixed_beats(t.burst);
  if (fixed != 0 && t.beats != fixed) {
    return false;
  }
  // Undefined-length INCR must still respect the 1KB boundary.
  if (!burst_within_1kb(t.addr, t.size, t.burst, t.beats)) {
    return false;
  }
  // Write payloads must cover every beat.
  if (t.dir == Dir::kWrite && t.data.size() < t.beats) {
    return false;
  }
  return true;
}

void save_state(state::StateWriter& w, const Transaction& t) {
  w.put_u64(t.id);
  w.put_u8(t.master);
  w.put_u8(static_cast<std::uint8_t>(t.dir));
  w.put_u64(t.addr);
  w.put_u8(static_cast<std::uint8_t>(t.size));
  w.put_u8(static_cast<std::uint8_t>(t.burst));
  w.put_u32(t.beats);
  w.put_bool(t.locked);
  w.put_u64(t.data.size());
  for (const Word d : t.data) {
    w.put_u64(d);
  }
  w.put_u64(t.issued_at);
  w.put_u64(t.granted_at);
  w.put_u64(t.started_at);
  w.put_u64(t.finished_at);
}

void restore_state(state::StateReader& r, Transaction& t) {
  t.id = r.get_u64();
  t.master = r.get_u8();
  t.dir = static_cast<Dir>(r.get_u8());
  t.addr = r.get_u64();
  t.size = static_cast<Size>(r.get_u8());
  t.burst = static_cast<Burst>(r.get_u8());
  t.beats = r.get_u32();
  t.locked = r.get_bool();
  t.data.assign(r.get_count(), 0);
  for (Word& d : t.data) {
    d = r.get_u64();
  }
  t.issued_at = r.get_u64();
  t.granted_at = r.get_u64();
  t.started_at = r.get_u64();
  t.finished_at = r.get_u64();
}

}  // namespace ahbp::ahb
