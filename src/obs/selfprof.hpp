#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file selfprof.hpp
/// Simulator self-profiling: named wall-clock phases accumulated as
/// {calls, nanoseconds}.  Components keep a `SelfProfiler*` that is null by
/// default, so the disabled path is a single pointer test that the compiler
/// hoists/inlines — attaching a profiler must never be required for
/// correctness and never perturbs simulated state (it only reads the wall
/// clock around host code).

namespace ahbp::obs {

class SelfProfiler {
 public:
  struct Phase {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
  };

  /// Get-or-create the phase id for `name`.  Ids are dense and stable for
  /// the profiler's lifetime, so hot loops resolve names once and then
  /// accumulate by index.
  unsigned phase(std::string_view name) {
    for (unsigned i = 0; i < phases_.size(); ++i) {
      if (phases_[i].name == name) {
        return i;
      }
    }
    phases_.push_back(Phase{std::string(name), 0, 0});
    return static_cast<unsigned>(phases_.size() - 1);
  }

  void add(unsigned id, std::uint64_t ns) noexcept {
    auto& p = phases_[id];
    ++p.calls;
    p.ns += ns;
  }

  const std::vector<Phase>& phases() const noexcept { return phases_; }

  std::uint64_t total_ns() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : phases_) {
      t += p.ns;
    }
    return t;
  }

 private:
  std::vector<Phase> phases_;
};

/// RAII wall-clock scope.  A null profiler makes construction/destruction
/// a no-op (single branch), which is the "instrumentation off" fast path.
class ScopedTimer {
 public:
  ScopedTimer(SelfProfiler* p, unsigned id) noexcept : prof_(p), id_(id) {
    if (prof_ != nullptr) {
      t0_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() {
    if (prof_ != nullptr) {
      const auto dt = std::chrono::steady_clock::now() - t0_;
      prof_->add(id_, static_cast<std::uint64_t>(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              dt)
                              .count()));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  SelfProfiler* prof_;
  unsigned id_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace ahbp::obs
