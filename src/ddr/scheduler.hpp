#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "ahb/types.hpp"
#include "ddr/bank.hpp"
#include "ddr/commands.hpp"
#include "ddr/geometry.hpp"
#include "ddr/storage.hpp"
#include "ddr/timing.hpp"
#include "sim/time.hpp"

/// \file scheduler.hpp
/// DdrcEngine — the complete behavioural model of the AHB+ DDR controller.
///
/// The engine is instantiated by *both* the transaction-level DDRC and the
/// signal-level DDRC: the paper models the controller FSM "as accurate as
/// register transfer level" in the TLM (§3.3), which we realize by sharing
/// one cycle-stepped engine.  What differs between the two models is only
/// how the AHB side talks to it (method calls vs. pin wiggling).
///
/// ## Cycle protocol (both wrappers follow it exactly)
///
///  * once per cycle call `step(now)` — the engine issues at most one DRAM
///    command, chosen by the priority scheme of §3.3 (column > row >
///    precharge, current transaction before speculative hint work).
///  * reads: poll `read_beat_available(now)`, then `take_read_beat(now)`.
///    One beat per cycle; availability honours tCL and the data bus.
///  * writes: poll `write_beat_ready(now)`, then `put_write_beat(now, w)`.
///    Writes are *posted*: the bus side completes when all beats are
///    accepted; DRAM write commands drain in the background and keep the
///    banks busy (subsequent transactions feel the contention — this is
///    where the write-related traffic patterns of Table 1 get their shape).
///  * the BI hint: `set_hint()` passes the arbiter's next-transaction
///    information so the engine can pre-charge / pre-activate the hinted
///    bank while the current transaction streams (§2 "bank interleaving").

namespace ahbp::ddr {

/// Bus-side request handed to the engine (a flattened ahb::Transaction —
/// the engine does not depend on the bus layer).
struct MemRequest {
  bool is_write = false;
  ahb::Addr addr = 0;       ///< byte offset inside the DDR region
  unsigned beat_bytes = 4;  ///< bytes per beat (1..8)
  unsigned beats = 1;
  ahb::Burst burst = ahb::Burst::kSingle;
};

/// How friendly a bank currently is to a coordinate (used by the BI /
/// arbiter bank filter).  Higher is better.
enum class BankAffinity : std::uint8_t {
  kConflict = 0,  ///< different row open, or bank mid-transition
  kIdle = 1,      ///< bank closed: one activate away
  kOpenRow = 2,   ///< matching row already open: column-ready
};

/// Shared affinity rule (also evaluated from BI signals in the RTL model).
BankAffinity bank_affinity(BankState state, std::uint32_t open_row,
                           const Coord& want) noexcept;

/// Snapshot helpers for the flattened request (used by the engine's own
/// state and by ChannelSet's segment decomposition).
void save_state(state::StateWriter& w, const MemRequest& m);
void restore_state(state::StateReader& r, MemRequest& m);

class DdrcEngine {
 public:
  DdrcEngine(const DdrTiming& timing, const Geometry& geom);

  // Not copyable: identity object with internal queues.
  DdrcEngine(const DdrcEngine&) = delete;
  DdrcEngine& operator=(const DdrcEngine&) = delete;

  // ------------------------------------------------- transaction control

  /// True if a bus transaction is currently being serviced.
  bool busy() const noexcept { return cur_active_; }

  /// Begin servicing a request.  Pre: !busy().  `now` is the cycle the
  /// transaction's first address phase is presented to the controller.
  void begin(const MemRequest& req, sim::Cycle now);

  /// True when the current transaction has transferred every beat on the
  /// bus side (for writes the background drain may still be running).
  bool done() const noexcept;

  /// Bus-side beats still to transfer for the current transaction
  /// (0 when idle).  Exposed over the BI so the arbiter can pipeline the
  /// next request into the tail of the current transfer.
  unsigned remaining_beats() const noexcept {
    if (!cur_active_) {
      return 0;
    }
    const CurrentTxn& t = cur_;
    return t.req.beats - (t.req.is_write ? t.beats_accepted : t.beats_consumed);
  }

  /// Drop the completed transaction (pre: done()).
  void finish();

  // ------------------------------------------------------ per-cycle step

  /// Issue at most one DRAM command for this cycle.  Must be called once
  /// per cycle, before the data-beat polls for the same cycle.  Returns the
  /// issued command (kNop if none) so wrappers/tracers can observe it.
  Command step(sim::Cycle now);

  /// Lower bound on the engine's next "interesting" cycle: step(t) is
  /// guaranteed to be a state-preserving no-op for every t in
  /// [now, idle_until(now)).  Returns `now` when anything is in flight
  /// (no skip), kNeverCycle when the engine is idle and refresh disabled.
  sim::Cycle idle_until(sim::Cycle now) const noexcept {
    if (cur_active_ || !write_queue_.empty() || hint_.has_value()) {
      return now;
    }
    const sim::Cycle due = engine_.next_refresh_due();
    return due < now ? now : due;
  }

  // -------------------------------------------------------- read stream

  bool read_beat_available(sim::Cycle now) const noexcept;
  /// Consume the current read beat (pre: read_beat_available(now)).
  ahb::Word take_read_beat(sim::Cycle now);

  // -------------------------------------------------------- write stream

  bool write_beat_ready(sim::Cycle now) const noexcept;
  /// Accept one write beat (pre: write_beat_ready(now)).
  void put_write_beat(sim::Cycle now, ahb::Word w);

  // --------------------------------------------------------------- hints

  /// BI next-transaction information (arbiter -> DDRC).  Pass std::nullopt
  /// to clear.  The engine only acts on hints for banks the current
  /// transaction (and pending write drain) does not need.
  void set_hint(std::optional<Coord> hint);

  /// BI information DDRC -> arbiter: per-bank idle bitmap.
  std::uint32_t idle_bank_mask(sim::Cycle now) const {
    return engine_.idle_bank_mask(now);
  }

  /// BI access permission: false while a refresh is pending/active, during
  /// which the arbiter should hold off granting new DDR transactions.
  bool access_permitted(sim::Cycle now) const noexcept;

  /// Affinity of the bank targeted by `offset` (BI -> arbiter, evaluated on
  /// behalf of a requesting master).
  BankAffinity affinity_for(ahb::Addr offset, sim::Cycle now) const;

  // ---------------------------------------------------------- inspection

  const BankEngine& banks() const noexcept { return engine_; }
  const Geometry& geometry() const noexcept { return geom_; }
  SparseMemory& memory() noexcept { return mem_; }
  const SparseMemory& memory() const noexcept { return mem_; }

  /// Outstanding background write chunks (for tests and the drain logic).
  std::size_t pending_write_chunks() const noexcept { return write_queue_.size(); }

  /// Row-buffer locality counters for profiling.
  struct HitStats {
    std::uint64_t row_hits = 0;      ///< column issued to an already-open row
    std::uint64_t row_misses = 0;    ///< activate needed on an idle bank
    std::uint64_t row_conflicts = 0; ///< precharge of a different row needed
    std::uint64_t hint_activates = 0;///< speculative activates from BI hints
    std::uint64_t hint_precharges = 0;
  };
  const HitStats& hit_stats() const noexcept { return hits_; }

  /// Snapshot the full controller FSM: current transaction (decomposed
  /// chunks, beat readiness), posted-write queue, BI hint, locality
  /// counters, the bank engine and the storage deltas.
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  /// A run of consecutive-column beats within one (bank, row).
  struct Chunk {
    Coord start;           ///< coordinates of the first beat
    unsigned beats = 0;
    unsigned issued = 0;   ///< beats covered by issued column commands
    bool classified = false;  ///< row hit/miss/conflict counted yet
  };

  struct CurrentTxn {
    MemRequest req;
    std::vector<ahb::Addr> beat_addr;   ///< byte address of every beat
    std::vector<Chunk> chunks;          ///< read: in order; write: staging
    std::size_t active_chunk = 0;
    // read-side
    std::vector<sim::Cycle> beat_ready; ///< cycle each beat's data is on the bus
    unsigned beats_issued = 0;          ///< beats covered by column cmds
    unsigned beats_consumed = 0;
    sim::Cycle last_consume = 0;
    // write-side
    unsigned beats_accepted = 0;
  };

  /// Background (posted) write work: one column command's worth.
  struct WriteChunk {
    Coord start;
    unsigned beats = 0;
  };

  void decompose(CurrentTxn& txn) const;
  Command pick_command(sim::Cycle now);
  std::optional<Command> column_for_read(sim::Cycle now);
  std::optional<Command> column_for_write_drain(sim::Cycle now) const;
  std::optional<Command> row_or_pre_for(const Coord& c, sim::Cycle now);
  std::optional<Command> hint_work(sim::Cycle now);
  bool bank_needed_soon(std::uint32_t bank) const;

  DdrTiming timing_;
  Geometry geom_;
  BankEngine engine_;
  SparseMemory mem_;

  /// The in-flight transaction lives in a persistent member (flag, not
  /// optional) so its beat/chunk vectors keep their capacity across
  /// transactions — the steady-state begin/finish cycle never allocates.
  CurrentTxn cur_;
  bool cur_active_ = false;
  std::deque<WriteChunk> write_queue_;
  std::optional<Coord> hint_;
  HitStats hits_;
};

}  // namespace ahbp::ddr
