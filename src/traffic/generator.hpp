#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "ahb/transaction.hpp"
#include "ahb/types.hpp"
#include "sim/time.hpp"
#include "state/snapshot.hpp"

/// \file generator.hpp
/// Deterministic synthetic traffic.
///
/// Table 1 of the paper varies "the traffic patterns of the masters" — this
/// module provides the pattern archetypes.  A pattern expands to a `Script`
/// (a fixed list of transactions with inter-transaction gaps) *before*
/// simulation, so the TLM and the signal-level model consume bitwise
/// identical stimulus: any cycle-count difference between them is caused by
/// the models, never by the workload.
///
/// Gaps are relative to the completion of the previous transaction of the
/// same master ("think time"), which keeps scripts meaningful across models
/// with slightly different absolute timing.

namespace ahbp::traffic {

/// One scripted transaction: issue `gap` cycles after the previous one
/// completes, then the transaction skeleton itself.
struct TrafficItem {
  sim::Cycle gap = 0;
  ahb::Transaction txn;  ///< timestamps zero; data filled for writes
};

using Script = std::vector<TrafficItem>;

/// Pattern archetypes (see DESIGN.md §2 for the mapping onto the paper's
/// master mixes).
enum class PatternKind : std::uint8_t {
  kCpu = 0,      ///< cache-line fills/evictions, locality, think time
  kDma = 1,      ///< long back-to-back bursts sweeping memory
  kRtStream = 2, ///< periodic fixed-size real-time bursts (display/video)
  kRandom = 3,   ///< uniform random mix (stress)
};

std::string to_string(PatternKind k);

/// Inverse of to_string(): parse "cpu" / "dma" / "rt-stream" / "random".
/// Returns false (and leaves `out` untouched) on an unknown name.
bool pattern_from_string(std::string_view name, PatternKind& out);

/// Parameters of one master's traffic.
struct PatternConfig {
  PatternKind kind = PatternKind::kRandom;
  std::uint64_t seed = 1;      ///< stream seed (combined with master id)
  unsigned items = 100;        ///< transactions to generate

  ahb::Addr base = 0;          ///< address window start (in DDR space)
  ahb::Addr span = 1 << 20;    ///< address window size in bytes

  double read_ratio = 0.7;     ///< P(read) where the pattern allows choice
  sim::Cycle period = 64;      ///< kRtStream: target issue period
  sim::Cycle mean_gap = 4;     ///< kCpu/kRandom: mean think time
  unsigned dma_burst_beats = 16;  ///< kDma: 32-bit-reference beats (4/8/16)

  /// Bus beat width in bytes ({1,2,4,8}; HSIZE-encodable).  Set from
  /// `BusConfig::data_width_bytes` by `core::expand_stimulus` so the §3.7 bus
  /// width knob reaches the stimulus: every archetype keeps the *bytes* it
  /// moves per transfer invariant and derives the beat count from this
  /// width — a wider bus needs fewer beats for the same work, a narrower
  /// one more.  The default reproduces the legacy 32-bit scripts exactly.
  unsigned beat_bytes = 4;
};

/// The traffic RNG: an explicitly owned, explicitly seeded engine, one per
/// (seed, master) stream.
///
/// Ownership is the contract here — the engine is constructed *inside* each
/// `make_script` call and never outlives it; there are no function-local
/// statics and no engine is ever shared between masters or threads.  That
/// makes script expansion a pure function of (PatternConfig, master), which
/// the checkpoint layer leans on: a restored platform regenerates its
/// scripts bit-identically, and `--jobs N` sweep workers expanding scripts
/// concurrently can never perturb each other (pinned by the determinism
/// regression tests).
class TrafficRng {
 public:
  TrafficRng(std::uint64_t seed, ahb::MasterId master);

  // UniformRandomBitGenerator, forwarding to the underlying engine so the
  // draw sequence is exactly the historical per-master stream.
  using result_type = std::mt19937_64::result_type;
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  /// The decorrelated per-master seed the engine was constructed with.
  std::uint64_t stream_seed() const noexcept { return stream_seed_; }

 private:
  std::uint64_t stream_seed_;
  std::mt19937_64 engine_;
};

/// Expand a pattern into its deterministic script for master `master`.
/// The same (config, master) pair always yields the same script, and a
/// script is a prefix of the same config's script with a larger `items` —
/// patterns draw per item from one owned TrafficRng stream (the property
/// warm-up-forked sweeps over `items` axes rely on).
Script make_script(const PatternConfig& cfg, ahb::MasterId master);

/// Total bytes a script will move (for bandwidth accounting in benches).
std::uint64_t script_bytes(const Script& s);

/// Content hash (FNV-1a 64) of the first `items` script entries — gap plus
/// the full transaction identity (master, direction, address, size, burst,
/// beats, lock, write data; timestamps are zero in scripts).  ScriptSource
/// snapshots hash their consumed prefix so a restore can prove the
/// receiving script agrees on everything the snapshotted run already
/// issued; `items` beyond the script length clamps (the items-prefix
/// property makes longer scripts share the prefix hash by construction).
std::uint64_t script_prefix_hash(const Script& s, std::size_t items);

class TraceRecorder;  // stimulus.hpp — capture tap on the master port

/// Script source: hands transactions to a model's master port one at a
/// time.  Both models drive this identically: call `ready(now)` each cycle;
/// when it returns true, `peek()` / `pop(now)` the next transaction.
class ScriptSource {
 public:
  explicit ScriptSource(Script script) : script_(std::move(script)) {}

  /// True when the next transaction's gap has elapsed at cycle `now`.
  bool ready(sim::Cycle now) const noexcept {
    return !done() && now >= earliest_;
  }

  bool done() const noexcept { return index_ >= script_.size(); }

  /// First cycle the next transaction may issue (kNeverCycle when the
  /// script is exhausted) — the idle-skip bound for the owning master.
  sim::Cycle next_ready_at() const noexcept {
    return done() ? sim::kNeverCycle : earliest_;
  }

  const ahb::Transaction& peek() const { return script_[index_].txn; }

  /// Take the next transaction (pre: ready(now)).
  ahb::Transaction pop(sim::Cycle now);

  /// Inform the source the popped transaction completed at `now`; arms the
  /// gap timer for the next item.
  void on_complete(sim::Cycle now);

  std::size_t issued() const noexcept { return index_; }
  std::size_t total() const noexcept { return script_.size(); }

  /// Attach a capture tap (nullptr detaches).  The recorder observes every
  /// pop as an issue and every on_complete as a completion — the single
  /// implementation both models' master ports flow through, so captured
  /// gaps are genuine think-time regardless of model.  Not snapshotted:
  /// capture is an observation tool, not simulation state.
  void set_recorder(TraceRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Snapshot the replay position (the script itself is configuration:
  /// it is regenerated deterministically from the pattern at restore).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  Script script_;
  std::size_t index_ = 0;
  sim::Cycle earliest_ = 0;  ///< next item may not issue before this cycle
  bool in_flight_ = false;
  TraceRecorder* recorder_ = nullptr;  ///< optional capture tap
};

}  // namespace ahbp::traffic
