#pragma once

#include <cstdint>

#include "ahb/types.hpp"
#include "ddr/geometry.hpp"

/// \file interleave.hpp
/// Channel address-interleave: the decoder in front of a sharded DDR
/// subsystem.
///
/// The memory side scales by decomposition-by-channel: N independent DDR
/// controllers, each with its own command/data bus and bank state, behind
/// one decoder that stripes the flat DDR aperture across them.  The stripe
/// granularity is a sweepable knob — fine stripes spread even short bursts
/// across channels, coarse stripes keep whole pages channel-local — and
/// both models consume this one decoder, so the mapping can never drift
/// between the TLM and the signal-level reference.

namespace ahbp::ddr {

/// The one power-of-two rule the interleave's validity (and the scenario
/// parser's accept-set) are both defined by.
constexpr bool is_power_of_two(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Coordinates of a column access inside a sharded memory subsystem: which
/// channel owns it, and where inside that channel's device it lands.
struct ChannelCoord {
  std::uint32_t channel = 0;
  Coord coord;

  bool operator==(const ChannelCoord&) const = default;
};

/// The address-interleave decoder: physical aperture offset ->
/// {channel, channel-local offset}.  `channels == 1` is the identity
/// mapping (local_of(a) == a), which is what keeps the single-channel
/// platform bit-exact with the pre-sharding model.
struct Interleave {
  /// Independent DDR channels (1, 2, 4 or 8).
  std::uint32_t channels = 1;
  /// Stripe granularity in bytes: consecutive `stripe_bytes` runs of the
  /// aperture rotate round-robin across channels.  Power of two, >= 8 so a
  /// single bus beat (max 8 bytes) can never straddle two channels.
  ahb::Addr stripe_bytes = 1024;

  bool operator==(const Interleave&) const = default;

  /// True when the parameters are usable (see member docs).
  bool valid() const noexcept;

  /// Channel owning aperture offset `a`.
  std::uint32_t channel_of(ahb::Addr a) const noexcept {
    return channels == 1
               ? 0u
               : static_cast<std::uint32_t>((a / stripe_bytes) % channels);
  }

  /// Channel-local offset of aperture offset `a`.
  ahb::Addr local_of(ahb::Addr a) const noexcept {
    if (channels == 1) {
      return a;
    }
    return (a / (stripe_bytes * channels)) * stripe_bytes + a % stripe_bytes;
  }

  /// Inverse: channel + channel-local offset back to the aperture offset.
  /// For every offset a: global_of(channel_of(a), local_of(a)) == a.
  ahb::Addr global_of(std::uint32_t channel, ahb::Addr local) const noexcept {
    if (channels == 1) {
      return local;
    }
    return (local / stripe_bytes) * (stripe_bytes * channels) +
           static_cast<ahb::Addr>(channel) * stripe_bytes +
           local % stripe_bytes;
  }
};

}  // namespace ahbp::ddr
