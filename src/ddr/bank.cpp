#include "ddr/bank.hpp"

#include <algorithm>
#include <stdexcept>

namespace ahbp::ddr {

// ----------------------------------------------------------------- Bank

BankState Bank::state(sim::Cycle now) const noexcept {
  if (row_open_) {
    return now < column_ready_ ? BankState::kActivating : BankState::kActive;
  }
  return now < idle_at_ ? BankState::kPrecharging : BankState::kIdle;
}

bool Bank::can_activate(sim::Cycle now) const noexcept {
  if (row_open_) {
    return false;  // must precharge first
  }
  if (now < idle_at_) {
    return false;  // precharge still completing (tRP)
  }
  if (ever_activated_ && now < activate_ready_) {
    return false;  // tRC since previous activate
  }
  return true;
}

bool Bank::can_column(sim::Cycle now, std::uint32_t row) const noexcept {
  return row_open_ && open_row_ == row && now >= column_ready_;
}

bool Bank::can_precharge(sim::Cycle now) const noexcept {
  // Precharging an already-idle bank is legal DDR behaviour but our
  // controller never benefits, so the model forbids it to catch scheduler
  // bugs early.
  return row_open_ && now >= precharge_ready_;
}

sim::Cycle Bank::earliest_column(sim::Cycle now,
                                 std::uint32_t row) const noexcept {
  if (row_open_ && open_row_ == row) {
    return std::max(now, column_ready_);
  }
  sim::Cycle t = now;
  if (row_open_) {
    // precharge (wait until legal) then tRP then activate then tRCD
    t = std::max(t, precharge_ready_);
    t += t_->tRP;
    t = std::max(t, activate_ready_);
    return t + t_->tRCD;
  }
  // closed: wait for idle, then activate + tRCD
  t = std::max(t, idle_at_);
  if (ever_activated_) {
    t = std::max(t, activate_ready_);
  }
  return t + t_->tRCD;
}

void Bank::activate(sim::Cycle now, std::uint32_t row) noexcept {
  row_open_ = true;
  ever_activated_ = true;
  open_row_ = row;
  activated_at_ = now;
  activate_ready_ = now + t_->tRC;
  column_ready_ = now + t_->tRCD;
  precharge_ready_ = now + t_->tRAS;
}

void Bank::column(sim::Cycle now, bool is_write,
                  sim::Cycle last_beat_at) noexcept {
  (void)now;
  // The row must stay open until the burst completes; writes additionally
  // need tWR after the final data beat before precharge.
  const sim::Cycle guard =
      is_write ? last_beat_at + 1 + t_->tWR : last_beat_at + 1;
  precharge_ready_ = std::max(precharge_ready_, guard);
}

void Bank::precharge(sim::Cycle now) noexcept {
  row_open_ = false;
  idle_at_ = now + t_->tRP;
}

void Bank::refresh(sim::Cycle now, sim::Cycle trfc) noexcept {
  // All-bank refresh: banks must already be idle; they become available
  // again after tRFC.
  idle_at_ = std::max(idle_at_, now + trfc);
  activate_ready_ = std::max(activate_ready_, now + trfc);
}

// ------------------------------------------------------------- BankEngine

BankEngine::BankEngine(const DdrTiming& timing, const Geometry& geom)
    : timing_(timing), geom_(geom) {
  const std::string err = timing_.validate();
  if (!err.empty()) {
    throw std::invalid_argument("BankEngine: bad timing: " + err);
  }
  banks_.reserve(geom_.banks);
  for (std::uint32_t b = 0; b < geom_.banks; ++b) {
    banks_.emplace_back(timing_);
  }
}

const Bank& BankEngine::bank(std::uint32_t b) const {
  if (b >= banks_.size()) {
    throw std::out_of_range("BankEngine: bank index");
  }
  return banks_[b];
}

Bank& BankEngine::bank(std::uint32_t b) {
  if (b >= banks_.size()) {
    throw std::out_of_range("BankEngine: bank index");
  }
  return banks_[b];
}

bool BankEngine::can_issue(const Command& cmd, sim::Cycle now) const noexcept {
  if (cmd.kind == CmdKind::kNop) {
    return true;
  }
  if (!command_slot_free(now)) {
    return false;
  }
  if (now < refresh_busy_until_) {
    return false;  // tRFC window blocks every command
  }
  switch (cmd.kind) {
    case CmdKind::kActivate: {
      if (cmd.bank >= banks_.size()) {
        return false;
      }
      if (any_activate_ && now < last_activate_any_ + timing_.tRRD) {
        return false;  // activate-to-activate across banks
      }
      return banks_[cmd.bank].can_activate(now);
    }
    case CmdKind::kRead:
    case CmdKind::kWrite: {
      if (cmd.bank >= banks_.size() || cmd.beats == 0) {
        return false;
      }
      if (any_column_ && now < last_column_any_ + timing_.tCCD) {
        return false;
      }
      if (!banks_[cmd.bank].can_column(now, cmd.row)) {
        return false;
      }
      // The shared data bus must be free when this burst's data starts.
      const sim::Cycle lat =
          cmd.kind == CmdKind::kRead ? timing_.tCL : timing_.tWL;
      return now + lat >= data_free_at_;
    }
    case CmdKind::kPrecharge: {
      if (cmd.bank >= banks_.size()) {
        return false;
      }
      return banks_[cmd.bank].can_precharge(now);
    }
    case CmdKind::kRefresh:
      return can_refresh(now);
    case CmdKind::kNop:
      return true;
  }
  return false;
}

sim::Cycle BankEngine::issue(const Command& cmd, sim::Cycle now) {
  if (!can_issue(cmd, now)) {
    throw std::logic_error("BankEngine: issue() of illegal command");
  }
  if (cmd.kind == CmdKind::kNop) {
    return 0;  // NOPs do not consume the command slot
  }
  last_cmd_at_ = now;
  any_cmd_issued_ = true;
  switch (cmd.kind) {
    case CmdKind::kActivate:
      banks_[cmd.bank].activate(now, cmd.row);
      last_activate_any_ = now;
      any_activate_ = true;
      ++counters_.activates;
      return 0;
    case CmdKind::kRead:
    case CmdKind::kWrite: {
      const bool is_write = cmd.kind == CmdKind::kWrite;
      const sim::Cycle lat = is_write ? timing_.tWL : timing_.tCL;
      const sim::Cycle first_beat = now + lat;
      const sim::Cycle last_beat = first_beat + cmd.beats - 1;
      banks_[cmd.bank].column(now, is_write, last_beat);
      last_column_any_ = now;
      any_column_ = true;
      data_free_at_ = last_beat + 1;
      if (is_write) {
        ++counters_.writes;
        counters_.write_beats += cmd.beats;
      } else {
        ++counters_.reads;
        counters_.read_beats += cmd.beats;
      }
      return first_beat;
    }
    case CmdKind::kPrecharge:
      banks_[cmd.bank].precharge(now);
      ++counters_.precharges;
      return 0;
    case CmdKind::kRefresh:
      for (Bank& b : banks_) {
        b.refresh(now, timing_.tRFC);
      }
      refresh_busy_until_ = now + timing_.tRFC;
      last_refresh_ = now;
      ++counters_.refreshes;
      return 0;
    case CmdKind::kNop:
      return 0;
  }
  return 0;
}

BankState BankEngine::bank_state(std::uint32_t b, sim::Cycle now) const {
  return bank(b).state(now);
}

std::uint32_t BankEngine::open_row(std::uint32_t b) const {
  return bank(b).open_row();
}

bool BankEngine::column_ready(const Coord& c, sim::Cycle now) const {
  return bank(c.bank).can_column(now, c.row);
}

std::uint32_t BankEngine::idle_bank_mask(sim::Cycle now) const {
  std::uint32_t mask = 0;
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    if (banks_[b].state(now) == BankState::kIdle) {
      mask |= 1U << b;
    }
  }
  return mask;
}

sim::Cycle BankEngine::earliest_column(const Coord& c, sim::Cycle now) const {
  return bank(c.bank).earliest_column(now, c.row);
}

bool BankEngine::refresh_due(sim::Cycle now) const noexcept {
  if (timing_.tREFI == 0) {
    return false;
  }
  return now >= last_refresh_ + timing_.tREFI;
}

bool BankEngine::can_refresh(sim::Cycle now) const noexcept {
  if (!command_slot_free(now) || now < refresh_busy_until_) {
    return false;
  }
  for (const Bank& b : banks_) {
    if (b.state(now) != BankState::kIdle) {
      return false;
    }
  }
  return true;
}

void Bank::save_state(state::StateWriter& w) const {
  w.put_bool(row_open_);
  w.put_u32(open_row_);
  w.put_u64(activated_at_);
  w.put_u64(activate_ready_);
  w.put_u64(column_ready_);
  w.put_u64(precharge_ready_);
  w.put_u64(idle_at_);
  w.put_bool(ever_activated_);
}

void Bank::restore_state(state::StateReader& r) {
  row_open_ = r.get_bool();
  open_row_ = r.get_u32();
  activated_at_ = r.get_u64();
  activate_ready_ = r.get_u64();
  column_ready_ = r.get_u64();
  precharge_ready_ = r.get_u64();
  idle_at_ = r.get_u64();
  ever_activated_ = r.get_bool();
}

void BankEngine::save_state(state::StateWriter& w) const {
  w.begin("bank-engine");
  w.put_u64(banks_.size());
  for (const Bank& b : banks_) {
    b.save_state(w);
  }
  w.put_u64(last_activate_any_);
  w.put_bool(any_activate_);
  w.put_u64(last_column_any_);
  w.put_bool(any_column_);
  w.put_u64(data_free_at_);
  w.put_u64(last_cmd_at_);
  w.put_bool(any_cmd_issued_);
  w.put_u64(last_refresh_);
  w.put_u64(refresh_busy_until_);
  w.put_u64(counters_.activates);
  w.put_u64(counters_.reads);
  w.put_u64(counters_.writes);
  w.put_u64(counters_.precharges);
  w.put_u64(counters_.refreshes);
  w.put_u64(counters_.read_beats);
  w.put_u64(counters_.write_beats);
  w.end();
}

void BankEngine::restore_state(state::StateReader& r) {
  r.enter("bank-engine");
  const std::uint64_t n = r.get_u64();
  if (n != banks_.size()) {
    throw state::StateError(
        "BankEngine: snapshot has " + std::to_string(n) +
        " banks, configuration has " + std::to_string(banks_.size()));
  }
  for (Bank& b : banks_) {
    b.restore_state(r);
  }
  last_activate_any_ = r.get_u64();
  any_activate_ = r.get_bool();
  last_column_any_ = r.get_u64();
  any_column_ = r.get_bool();
  data_free_at_ = r.get_u64();
  last_cmd_at_ = r.get_u64();
  any_cmd_issued_ = r.get_bool();
  last_refresh_ = r.get_u64();
  refresh_busy_until_ = r.get_u64();
  counters_.activates = r.get_u64();
  counters_.reads = r.get_u64();
  counters_.writes = r.get_u64();
  counters_.precharges = r.get_u64();
  counters_.refreshes = r.get_u64();
  counters_.read_beats = r.get_u64();
  counters_.write_beats = r.get_u64();
  r.leave();
}

}  // namespace ahbp::ddr
