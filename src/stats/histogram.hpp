#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "state/snapshot.hpp"

/// \file histogram.hpp
/// Streaming statistics primitives used by the profiling layer (§3.6).

namespace ahbp::stats {

/// Running min/max/mean/count over a stream of samples.
class Summary {
 public:
  void add(std::uint64_t v) noexcept {
    ++count_;
    sum_ += v;
    min_ = v < min_ ? v : min_;
    max_ = v > max_ ? v : max_;
  }

  /// Equivalent to calling add(v) n times (bulk replay for skipped cycles).
  void add_n(std::uint64_t v, std::uint64_t n) noexcept {
    if (n == 0) {
      return;
    }
    count_ += n;
    sum_ += v * n;
    min_ = v < min_ ? v : min_;
    max_ = v > max_ ? v : max_;
  }

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Power-of-two bucketed histogram: bucket k counts samples in
/// [2^k, 2^(k+1)) with bucket 0 holding 0 and 1.  Compact and sufficient
/// for latency distributions.
class Log2Histogram {
 public:
  Log2Histogram();

  void add(std::uint64_t v) noexcept;

  /// Count in bucket k.
  std::uint64_t bucket(unsigned k) const noexcept;
  unsigned buckets() const noexcept { return static_cast<unsigned>(counts_.size()); }
  std::uint64_t total() const noexcept { return total_; }

  /// Smallest value v such that at least `pct` percent of samples are <= v,
  /// resolved at bucket granularity (upper bound of the bucket).
  std::uint64_t percentile_upper(double pct) const noexcept;

  const Summary& summary() const noexcept { return summary_; }

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  Summary summary_;
};

}  // namespace ahbp::stats
