// The paper's motivating scenario (§2): "AMBA2.0 ... cannot guarantee
// master's QoS.  AHB+ is designed to address this issue."
//
// A real-time display stream must fetch a line every 40 cycles with a
// 48-cycle deadline while three DMA engines hammer the bus.  We run the
// same system twice — once as plain AHB (QoS filters off) and once as
// AHB+ — and show the deadline behaviour of the stream.

#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

namespace {

ahbp::core::PlatformConfig make_system(bool ahb_plus) {
  using namespace ahbp;
  core::PlatformConfig cfg = core::default_platform(4, 2024, 300);
  cfg.masters[0].qos = {ahb::MasterClass::kRealTime, 48};
  cfg.masters[0].traffic.kind = traffic::PatternKind::kRtStream;
  cfg.masters[0].traffic.period = 40;
  for (unsigned m = 1; m < 4; ++m) {
    cfg.masters[m].traffic.kind = traffic::PatternKind::kDma;
    cfg.masters[m].traffic.dma_burst_beats = 16;
  }
  if (!ahb_plus) {
    cfg.bus.filter_mask = ahb::with_filter(
        ahb::with_filter(ahb::kAllFilters, ahb::FilterBit::kUrgency, false),
        ahb::FilterBit::kQosBudget, false);
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace ahbp;

  stats::TextTable t({"bus", "RT wait avg", "RT wait p99", "RT wait max",
                      "deadline misses", "DMA throughput B/cyc"});
  for (const bool ahb_plus : {false, true}) {
    const auto r = core::run_tlm(make_system(ahb_plus));
    const auto& rt = r.profile.masters[0];
    std::uint64_t dma_bytes = 0;
    for (unsigned m = 1; m < 4; ++m) {
      dma_bytes += r.profile.masters[m].bytes_read +
                   r.profile.masters[m].bytes_written;
    }
    t.add_row({ahb_plus ? "AHB+ (QoS filters on)" : "plain AHB arbitration",
               stats::fmt_double(rt.grant_wait.summary().mean(), 1),
               std::to_string(rt.grant_wait.percentile_upper(99)),
               std::to_string(rt.grant_wait.summary().max()),
               std::to_string(rt.qos_misses),
               stats::fmt_double(static_cast<double>(dma_bytes) /
                                     static_cast<double>(r.cycles),
                                 3)});
  }

  std::cout << "real-time stream: one INCR8 line fetch per 40 cycles,"
               " 48-cycle deadline,\nagainst three 16-beat DMA engines:\n\n";
  t.print(std::cout);
  std::cout << "\nthe AHB+ urgency + budget filters bound the stream's tail"
               " latency at the\ncost of a little DMA throughput — the trade"
               " the paper's §2 describes.\n";
  return 0;
}
