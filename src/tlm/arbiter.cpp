#include "tlm/arbiter.hpp"

#include <bit>
#include <limits>
#include <memory>

#include "assertions/assert.hpp"

namespace ahbp::tlm {

namespace {

bool enabled(const ArbContext& ctx, ahb::FilterBit b) {
  return ahb::filter_enabled(ctx.cfg->filter_mask, b);
}

/// Stage 1 — the base set: every requesting candidate that is not blocked
/// by a read-after-write hazard.  If the eager set is empty but the write
/// buffer holds data, the buffer becomes the (sole) opportunistic
/// candidate, which is how it drains through bus idle gaps.
class RequestFilter final : public ArbitrationFilter {
 public:
  std::string_view name() const noexcept override { return "request"; }
  ahb::FilterBit bit() const noexcept override {
    return ahb::FilterBit::kRequest;
  }
  CandidateMask apply(const ArbContext& ctx, CandidateMask) const override {
    CandidateMask m = 0;
    for (unsigned i = 0; i < ctx.candidates.size(); ++i) {
      const ArbCandidate& c = ctx.candidates[i];
      if (c.requesting && !c.blocked_by_hazard) {
        m |= 1U << i;
      }
    }
    return m;
  }
};

/// Stage 2 — locked-transfer ownership: a master holding HLOCK keeps the
/// bus until its locked transaction completes.
class LockFilter final : public ArbitrationFilter {
 public:
  std::string_view name() const noexcept override { return "lock"; }
  ahb::FilterBit bit() const noexcept override { return ahb::FilterBit::kLock; }
  CandidateMask apply(const ArbContext& ctx, CandidateMask in) const override {
    if (ctx.lock_owner == ahb::kNoMaster) {
      return in;
    }
    const CandidateMask owner_bit = 1U << ctx.lock_owner;
    return (in & owner_bit) ? owner_bit : in;
  }
};

/// Stage 3 — QoS urgency: real-time masters whose slack (objective minus
/// wait so far) fell below the configured threshold pre-empt everything;
/// among several urgent masters the smallest slack wins.  A full/hazard
/// write buffer is treated as urgent too, but RT emergencies outrank it.
class UrgencyFilter final : public ArbitrationFilter {
 public:
  std::string_view name() const noexcept override { return "urgency"; }
  ahb::FilterBit bit() const noexcept override {
    return ahb::FilterBit::kUrgency;
  }
  CandidateMask apply(const ArbContext& ctx, CandidateMask in) const override {
    CandidateMask urgent = 0;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (unsigned i = 0; i < ctx.masters; ++i) {
      if (!((in >> i) & 1U)) {
        continue;
      }
      const auto& cfg = ctx.qos->config(static_cast<ahb::MasterId>(i));
      if (cfg.cls != ahb::MasterClass::kRealTime) {
        continue;
      }
      const std::int64_t slack =
          ctx.qos->rt_slack(static_cast<ahb::MasterId>(i), ctx.now);
      if (slack >= static_cast<std::int64_t>(ctx.cfg->urgency_slack_threshold)) {
        continue;
      }
      if (slack < best) {
        best = slack;
        urgent = 1U << i;
      } else if (slack == best) {
        urgent |= 1U << i;
      }
    }
    if (urgent != 0) {
      return urgent;
    }
    if (ctx.wbuf_urgent && (in & ctx.wbuf_bit())) {
      return ctx.wbuf_bit();
    }
    return in;
  }
};

/// Stage 4 — bank awareness (BI): prefer candidates whose target bank is
/// most ready (open matching row beats idle beats conflicting), enabling
/// the DDR bank interleaving the BI exists for.
class BankFilter final : public ArbitrationFilter {
 public:
  std::string_view name() const noexcept override { return "bank"; }
  ahb::FilterBit bit() const noexcept override { return ahb::FilterBit::kBank; }
  CandidateMask apply(const ArbContext& ctx, CandidateMask in) const override {
    if (!ctx.cfg->bi_hints_enabled) {
      return in;
    }
    ddr::BankAffinity best = ddr::BankAffinity::kConflict;
    for (unsigned i = 0; i < ctx.candidates.size(); ++i) {
      if (((in >> i) & 1U) && ctx.candidates[i].affinity > best) {
        best = ctx.candidates[i].affinity;
      }
    }
    CandidateMask out = 0;
    for (unsigned i = 0; i < ctx.candidates.size(); ++i) {
      if (((in >> i) & 1U) && ctx.candidates[i].affinity == best) {
        out |= 1U << i;
      }
    }
    return out != 0 ? out : in;
  }
};

/// Stage 5 — bandwidth budgets: masters that still hold budget tokens for
/// the current epoch outrank those that exhausted theirs.  The write
/// buffer has no budget and is treated as always in-budget (its bandwidth
/// is accounted to the masters whose writes it carries).
class QosBudgetFilter final : public ArbitrationFilter {
 public:
  std::string_view name() const noexcept override { return "qos-budget"; }
  ahb::FilterBit bit() const noexcept override {
    return ahb::FilterBit::kQosBudget;
  }
  CandidateMask apply(const ArbContext& ctx, CandidateMask in) const override {
    CandidateMask out = 0;
    for (unsigned i = 0; i < ctx.candidates.size(); ++i) {
      if (!((in >> i) & 1U)) {
        continue;
      }
      if (i >= ctx.masters) {
        out |= 1U << i;  // write buffer: always in budget
        continue;
      }
      const auto& st = ctx.qos->state(static_cast<ahb::MasterId>(i));
      const auto& cfg = ctx.qos->config(static_cast<ahb::MasterId>(i));
      // objective 0 = best effort (no budget tracking for this master)
      if (cfg.objective == 0 || st.budget > 0) {
        out |= 1U << i;
      }
    }
    return out != 0 ? out : in;
  }
};

/// Stage 6 — round-robin fairness: the first candidate strictly after the
/// last grant in circular index order.
class RoundRobinFilter final : public ArbitrationFilter {
 public:
  std::string_view name() const noexcept override { return "round-robin"; }
  ahb::FilterBit bit() const noexcept override {
    return ahb::FilterBit::kRoundRobin;
  }
  CandidateMask apply(const ArbContext& ctx, CandidateMask in) const override {
    if (in == 0) {
      return in;
    }
    const unsigned n = static_cast<unsigned>(ctx.candidates.size());
    const unsigned start =
        ctx.last_grant == ahb::kNoMaster ? 0 : (ctx.last_grant + 1U) % n;
    for (unsigned k = 0; k < n; ++k) {
      const unsigned i = (start + k) % n;
      if ((in >> i) & 1U) {
        return 1U << i;
      }
    }
    return in;
  }
};

/// Stage 7 — fixed priority: lowest index wins.  Guarantees a unique
/// winner whatever subset of the other stages is enabled.
class PriorityFilter final : public ArbitrationFilter {
 public:
  std::string_view name() const noexcept override { return "priority"; }
  ahb::FilterBit bit() const noexcept override {
    return ahb::FilterBit::kPriority;
  }
  CandidateMask apply(const ArbContext&, CandidateMask in) const override {
    if (in == 0) {
      return 0;
    }
    return in & (~in + 1);  // lowest set bit
  }
};

}  // namespace

FilterPipeline::FilterPipeline() {
  // Order encodes policy: QoS guarantees (urgency, budget) outrank the
  // throughput optimization (bank affinity), which outranks fairness
  // tie-breaks.  Budget-before-bank also prevents an open-row feedback
  // loop from starving a master for longer than one budget epoch.
  stages_.push_back(std::make_unique<RequestFilter>());
  stages_.push_back(std::make_unique<LockFilter>());
  stages_.push_back(std::make_unique<UrgencyFilter>());
  stages_.push_back(std::make_unique<QosBudgetFilter>());
  stages_.push_back(std::make_unique<BankFilter>());
  stages_.push_back(std::make_unique<RoundRobinFilter>());
  stages_.push_back(std::make_unique<PriorityFilter>());
  for (const auto& s : stages_) {
    stage_views_.push_back(s.get());
  }
}

std::optional<ahb::MasterId> FilterPipeline::arbitrate(
    const ArbContext& ctx,
    std::vector<std::pair<std::string_view, CandidateMask>>* trace) const {
  AHBP_ASSERT(ctx.cfg != nullptr && ctx.qos != nullptr);
  AHBP_ASSERT(ctx.candidates.size() == ctx.masters + 1);

  CandidateMask mask = 0;
  bool first = true;
  for (const auto& stage : stages_) {
    // The request stage always runs (it defines the base set); the others
    // honour the §3.7 per-filter enable mask.
    if (first || enabled(ctx, stage->bit())) {
      mask = stage->apply(ctx, mask);
    }
    if (trace) {
      trace->emplace_back(stage->name(), mask);
    }
    if (first && mask == 0) {
      return std::nullopt;  // nobody requesting
    }
    first = false;
  }
  // The priority stage may be disabled in ablations; fall back to its rule
  // so the arbiter still returns a unique winner.
  if (std::popcount(mask) > 1) {
    mask &= (~mask + 1);
  }
  AHBP_ASSERT_MSG(std::popcount(mask) == 1, "arbitration must pick one");
  return static_cast<ahb::MasterId>(std::countr_zero(mask));
}

Arbiter::Arbiter(const ahb::BusConfig& cfg, ahb::QosRegisterFile& qos)
    : cfg_(cfg), qos_(qos) {}

void Arbiter::on_request(ahb::MasterId m, sim::Cycle now) {
  auto& st = qos_.state(m);
  AHBP_ASSERT_MSG(!st.requesting, "master re-requested while pending");
  st.requesting = true;
  st.request_since = now;
}

void Arbiter::tick(sim::Cycle now) {
  if (now >= last_epoch_ + qos_.epoch()) {
    qos_.refill_budgets();
    last_epoch_ = now;
  }
}

void Arbiter::skip_idle(sim::Cycle from, sim::Cycle to) {
  // Replay tick(from), tick(from+1), ..., tick(to-1) in closed form: each
  // refill fires at the first cycle >= last_epoch_ + epoch and resets the
  // clock to that cycle (epoch >= 1 is guaranteed by QosRegisterFile).
  const sim::Cycle epoch = qos_.epoch();
  sim::Cycle t = last_epoch_ + epoch;
  if (t < from) {
    t = from;
  }
  while (t < to) {
    qos_.refill_budgets();
    last_epoch_ = t;
    t = last_epoch_ + epoch;
  }
}

std::optional<Arbiter::Grant> Arbiter::arbitrate(ArbContext& ctx) {
  ctx.last_grant = last_grant_;
  const auto winner = pipeline_.arbitrate(ctx);
  if (!winner) {
    return std::nullopt;
  }
  Grant g;
  g.master = *winner;
  g.is_wbuf = *winner >= ctx.masters;
  last_grant_ = *winner;
  ++grants_;
  if (!g.is_wbuf) {
    auto& st = qos_.state(g.master);
    AHBP_ASSERT_MSG(st.requesting, "grant to a non-requesting master");
    g.waited = ctx.now - st.request_since;
    st.requesting = false;
    st.budget -=
        static_cast<std::int64_t>(ctx.candidates[g.master].beats);
    ++st.grants;
  }
  return g;
}

void Arbiter::save_state(state::StateWriter& w) const {
  w.begin("arbiter");
  w.put_u8(last_grant_);
  w.put_u64(grants_);
  w.put_u64(last_epoch_);
  w.end();
}

void Arbiter::restore_state(state::StateReader& r) {
  r.enter("arbiter");
  last_grant_ = r.get_u8();
  grants_ = r.get_u64();
  last_epoch_ = r.get_u64();
  r.leave();
}

}  // namespace ahbp::tlm
