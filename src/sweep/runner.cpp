#include "sweep/runner.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <ostream>
#include <thread>

#include "core/checkpoint.hpp"
#include "obs/stall.hpp"
#include "state/snapshot.hpp"

namespace ahbp::sweep {

bool model_from_string(std::string_view name, Model& out) {
  if (name == "tlm") {
    out = Model::kTlm;
  } else if (name == "rtl") {
    out = Model::kRtl;
  } else if (name == "both") {
    out = Model::kBoth;
  } else {
    return false;
  }
  return true;
}

double cycle_error(const core::SimResult& tlm, const core::SimResult& rtl) {
  if (rtl.cycles == 0) {
    return 0.0;
  }
  return std::abs(static_cast<double>(tlm.cycles) -
                  static_cast<double>(rtl.cycles)) /
         static_cast<double>(rtl.cycles);
}

double PointOutcome::cycle_error() const noexcept {
  if (!has_tlm || !has_rtl) {
    return 0.0;
  }
  return sweep::cycle_error(tlm, rtl);
}

std::vector<PointOutcome> SweepRunner::run(
    const std::vector<SweepPoint>& points, Model model) const {
  return run(points, model, core::PlatformConfig{}, 0);
}

void warm_snapshots(const core::PlatformConfig& base, Model model,
                    sim::Cycle warmup_cycles,
                    std::vector<std::uint8_t>& warm_tlm,
                    std::vector<std::uint8_t>& warm_rtl) {
  warm_tlm.clear();
  warm_rtl.clear();
  if (warmup_cycles == 0) {
    return;
  }
  if (model == Model::kTlm || model == Model::kBoth) {
    core::Platform p(base, core::ModelKind::kTlm);
    p.run(warmup_cycles);
    state::StateWriter w;
    p.save_state(w);
    warm_tlm = w.finish();
  }
  if (model == Model::kRtl || model == Model::kBoth) {
    core::Platform p(base, core::ModelKind::kRtl);
    p.run(warmup_cycles);
    state::StateWriter w;
    p.save_state(w);
    warm_rtl = w.finish();
  }
}

namespace {

core::SimResult run_one_model(const core::PlatformConfig& cfg,
                              core::ModelKind kind,
                              const std::vector<std::uint8_t>& snapshot,
                              bool& demoted) {
  if (!snapshot.empty()) {
    try {
      core::Platform p(cfg, kind);
      state::StateReader r(snapshot.data(), snapshot.size());
      p.restore_state(r);
      p.run_to_completion();
      return p.result();
    } catch (const state::ForkDivergence&) {
      // The point's stimulus diverged from the warm base before the fork
      // point: the warm state is not this configuration's history.  Run
      // it cold — exact, just without the fork speedup.  Structural
      // mismatches stay fatal (plain StateError propagates).
      demoted = true;
    }
  }
  core::Platform p(cfg, kind);
  p.run_to_completion();
  return p.result();
}

}  // namespace

PointOutcome simulate_point(const SweepPoint& point, Model model,
                            const std::vector<std::uint8_t>& warm_tlm,
                            const std::vector<std::uint8_t>& warm_rtl) {
  PointOutcome o;
  o.index = point.index;
  o.label = point.label;
  try {
    if (model == Model::kTlm || model == Model::kBoth) {
      o.tlm = run_one_model(point.config, core::ModelKind::kTlm, warm_tlm,
                            o.demoted);
      o.has_tlm = true;
    }
    if (model == Model::kRtl || model == Model::kBoth) {
      o.rtl = run_one_model(point.config, core::ModelKind::kRtl, warm_rtl,
                            o.demoted);
      o.has_rtl = true;
    }
  } catch (const std::exception& e) {
    o.error = e.what();
  } catch (...) {
    o.error = "unknown simulation failure";
  }
  return o;
}

std::vector<PointOutcome> SweepRunner::run(
    const std::vector<SweepPoint>& points, Model model,
    const core::PlatformConfig& base, sim::Cycle warmup_cycles) const {
  std::vector<PointOutcome> outcomes(points.size());

  // Warm the shared prefix up once per model — serial, before the fan-out —
  // and freeze it.  Workers only ever *read* the snapshot bytes.
  std::vector<std::uint8_t> warm_tlm, warm_rtl;
  warm_snapshots(base, model, warmup_cycles, warm_tlm, warm_rtl);

  std::atomic<std::size_t> done{0};
  const auto simulate = [&](std::size_t i) {
    outcomes[i] = simulate_point(points[i], model, warm_tlm, warm_rtl);
    if (progress_) {
      progress_(done.fetch_add(1, std::memory_order_relaxed) + 1,
                points.size());
    }
  };

  unsigned jobs = jobs_ == 0 ? std::thread::hardware_concurrency() : jobs_;
  if (jobs == 0) {
    jobs = 1;
  }
  if (jobs > points.size()) {
    jobs = static_cast<unsigned>(points.size());
  }

  if (jobs <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      simulate(i);
    }
    return outcomes;
  }

  // Work-stealing by atomic counter: each worker grabs the next unclaimed
  // index.  Writes land in outcomes[i], so completion order is irrelevant.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= points.size()) {
          return;
        }
        simulate(i);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  return outcomes;
}

stats::TextTable aggregate_table(const std::vector<PointOutcome>& outcomes,
                                 Model model, bool include_speed) {
  const bool both = model == Model::kBoth;
  const bool tlm = model != Model::kRtl;
  const bool rtl = model != Model::kTlm;

  std::vector<std::string> headers{"#", "configuration"};
  if (tlm) {
    headers.push_back("tlm cycles");
  }
  if (rtl) {
    headers.push_back("rtl cycles");
  }
  if (both) {
    headers.push_back("error");
  }
  headers.push_back("txns");
  headers.push_back("qos warn");
  headers.push_back("errors");
  if (include_speed && tlm) {
    headers.push_back("tlm kcyc/s");
  }
  if (include_speed && rtl) {
    headers.push_back("rtl kcyc/s");
  }
  stats::TextTable table(std::move(headers));

  for (const PointOutcome& o : outcomes) {
    std::vector<std::string> row{
        std::to_string(o.index),
        o.demoted ? o.label + " [cold]" : o.label};
    const core::SimResult& primary = o.has_tlm ? o.tlm : o.rtl;
    const auto cycles_cell = [](bool has, const core::SimResult& r) {
      if (!has) {
        return std::string("-");
      }
      return r.finished ? std::to_string(r.cycles)
                        : std::to_string(r.cycles) + " (timeout)";
    };
    if (tlm) {
      row.push_back(cycles_cell(o.has_tlm, o.tlm));
    }
    if (rtl) {
      row.push_back(cycles_cell(o.has_rtl, o.rtl));
    }
    if (both) {
      row.push_back(o.has_tlm && o.has_rtl
                        ? stats::fmt_percent(o.cycle_error())
                        : "-");
    }
    if (!o.error.empty()) {
      row.push_back("FAILED: " + o.error);
      row.push_back("-");
      row.push_back("-");
    } else {
      row.push_back(std::to_string(primary.completed));
      row.push_back(std::to_string(o.has_rtl ? o.rtl.qos_warnings
                                             : o.tlm.qos_warnings));
      row.push_back(std::to_string(primary.protocol_errors));
    }
    if (include_speed && tlm) {
      row.push_back(o.has_tlm
                        ? stats::fmt_double(core::kcycles_per_sec(o.tlm), 0)
                        : "-");
    }
    if (include_speed && rtl) {
      row.push_back(o.has_rtl
                        ? stats::fmt_double(core::kcycles_per_sec(o.rtl), 0)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

namespace {

/// Minimal CSV quoting: wrap fields containing separators/quotes/newlines.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

void point_cells(std::ostream& os, bool has, const core::SimResult& r) {
  if (!has) {
    // One comma per column emitted below: 8 counters + the 6 stall classes.
    os << ",,,,,,,,,,,,,,";
    return;
  }
  os << ',' << (r.finished ? 1 : 0) << ',' << r.cycles << ',' << r.ran_cycles
     << ',' << r.completed << ',' << r.protocol_errors << ','
     << r.qos_warnings << ',' << r.profile.bus.grants << ','
     << r.profile.bus.bytes;
  // Stall attribution, summed across masters (per-master detail lives in
  // `run --stats-json`; the sweep table wants one column per class).
  for (unsigned c = 0; c < obs::kStallClassCount; ++c) {
    std::uint64_t sum = 0;
    for (const stats::MasterProfile& m : r.profile.masters) {
      sum += m.stalls.cycles[c];
    }
    os << ',' << sum;
  }
}

}  // namespace

void write_point_csv(std::ostream& os,
                     const std::vector<PointOutcome>& outcomes, Model model) {
  const bool tlm = model != Model::kRtl;
  const bool rtl = model != Model::kTlm;
  os << "index,label";
  const auto model_header = [&os](const char* prefix) {
    os << ',' << prefix << "_finished," << prefix << "_cycles," << prefix
       << "_ran_cycles," << prefix << "_completed," << prefix
       << "_protocol_errors," << prefix << "_qos_warnings," << prefix
       << "_grants," << prefix << "_bus_bytes";
    for (unsigned c = 0; c < obs::kStallClassCount; ++c) {
      os << ',' << prefix << "_stall_"
         << obs::to_string(static_cast<obs::StallClass>(c));
    }
  };
  if (tlm) {
    model_header("tlm");
  }
  if (rtl) {
    model_header("rtl");
  }
  if (tlm && rtl) {
    os << ",cycle_error";
  }
  os << ",demoted,error\n";

  for (const PointOutcome& o : outcomes) {
    os << o.index << ',' << csv_field(o.label);
    if (tlm) {
      point_cells(os, o.has_tlm, o.tlm);
    }
    if (rtl) {
      point_cells(os, o.has_rtl, o.rtl);
    }
    if (tlm && rtl) {
      os << ',';
      if (o.has_tlm && o.has_rtl) {
        os << stats::fmt_double(o.cycle_error(), 6);
      }
    }
    os << ',' << (o.demoted ? 1 : 0) << ',' << csv_field(o.error) << '\n';
  }
}

}  // namespace ahbp::sweep
