#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/platform.hpp"
#include "stats/report.hpp"
#include "sweep/spec.hpp"

/// \file runner.hpp
/// Parallel execution of expanded sweeps.
///
/// Simulation runs are fully self-contained (`run_tlm` / `run_rtl` share no
/// mutable state), so a sweep fans out across a `std::thread` pool and
/// scales with cores.  Results are collected *by expansion index*, never by
/// completion order, so the aggregate report is byte-identical no matter
/// how many workers raced to produce it — determinism the tests pin down.
///
/// ## Fork-from-warm-up
///
/// Every sweep point used to re-simulate the identical warm-up prefix —
/// cold DDR banks, empty write buffers, arbiter settling — before the
/// configurations even diverge.  With `warmup_cycles > 0` the runner
/// simulates the *base* scenario once per model, snapshots the whole
/// platform through the src/state layer, and forks every point from that
/// snapshot; workers share the read-only snapshot bytes.  The fork
/// reproduces the cold sweep exactly when the swept axes leave the first
/// `warmup_cycles` invariant (e.g. `items` axes, whose scripts extend the
/// base's by construction); axes that perturb the prefix — seeds, timings,
/// arbitration knobs — make the fork an approximation of the cold run, the
/// standard checkpoint-sweep trade-off.  Structural mismatches (master or
/// channel count, bank geometry, checker enablement) fail the point with a
/// clear error instead of diverging silently.
///
/// Axes that reshape the stimulus *prefix* itself (seeds, patterns,
/// address windows, traces) are caught by the script-hash check in the v4
/// snapshot format: the restore throws state::ForkDivergence, the runner
/// demotes the point to a cold run (exact numbers, no fork speedup), and
/// the per-point CSV flags it in the `demoted` column.

namespace ahbp::sweep {

/// Which model(s) each point runs on.
enum class Model : std::uint8_t {
  kTlm = 0,
  kRtl = 1,
  kBoth = 2,  ///< both, plus the TLM-vs-RTL accuracy column
};

/// Parse "tlm" / "rtl" / "both".  Returns false on an unknown name.
bool model_from_string(std::string_view name, Model& out);

/// The Table-1 accuracy metric: |tlm - rtl| / rtl total cycles (0 when the
/// RTL count is 0).  One definition, used by run reports and sweep tables.
double cycle_error(const core::SimResult& tlm, const core::SimResult& rtl);

/// Outcome of one sweep point.
struct PointOutcome {
  std::size_t index = 0;
  std::string label;
  bool has_tlm = false;
  bool has_rtl = false;
  core::SimResult tlm;
  core::SimResult rtl;
  std::string error;  ///< non-empty when the run threw instead of finishing

  /// A warm-up-forked point whose stimulus diverged from the warm base
  /// (state::ForkDivergence on restore) was re-run cold: its numbers are
  /// exact, but it paid the full warm-up it was supposed to skip.  Always
  /// false for cold sweeps.  Flagged in the per-point CSV.
  bool demoted = false;

  /// |tlm - rtl| / rtl cycle error (0 unless both models ran).
  double cycle_error() const noexcept;
};

/// Warm `base` up for `warmup_cycles` once per requested model — serial —
/// and seal the snapshot images into `warm_tlm` / `warm_rtl` (left empty
/// for models not requested, or when `warmup_cycles == 0`).  Shared by
/// `SweepRunner` and the farm coordinator (src/farm/) so an in-process
/// sweep and a farmed sweep fork every point from byte-identical state.
void warm_snapshots(const core::PlatformConfig& base, Model model,
                    sim::Cycle warmup_cycles,
                    std::vector<std::uint8_t>& warm_tlm,
                    std::vector<std::uint8_t>& warm_rtl);

/// Simulate one expanded point and return its outcome: fork each requested
/// model from the matching snapshot when non-empty (demoting to a cold run
/// on state::ForkDivergence), run cold otherwise.  Exceptions land in
/// `PointOutcome::error`, never escape.  This is the single simulation
/// path behind both `SweepRunner::run` and the farm worker loop — the
/// byte-identical-CSV guarantee across `--jobs` and `--farm-workers` rests
/// on everything funnelling through here.
PointOutcome simulate_point(const SweepPoint& point, Model model,
                            const std::vector<std::uint8_t>& warm_tlm,
                            const std::vector<std::uint8_t>& warm_rtl);

class SweepRunner {
 public:
  /// `jobs` worker threads (clamped to [1, points]; 0 = hardware
  /// concurrency).
  explicit SweepRunner(unsigned jobs = 1) : jobs_(jobs) {}

  unsigned jobs() const noexcept { return jobs_; }

  /// Invoked after each point finishes with (points done so far, total).
  /// With multiple workers the callback runs concurrently from worker
  /// threads — it must synchronize its own output (the CLI wraps a mutex
  /// around its stderr line).  Null (the default) disables.
  void set_progress(std::function<void(std::size_t, std::size_t)> cb) {
    progress_ = std::move(cb);
  }

  /// Run every point cold, in parallel, deterministically ordered by index.
  std::vector<PointOutcome> run(const std::vector<SweepPoint>& points,
                                Model model) const;

  /// Warm `base` up for `warmup_cycles` once per requested model, then fork
  /// every point from the snapshot (see the file comment for the exactness
  /// contract).  `warmup_cycles == 0` degrades to the cold run.
  std::vector<PointOutcome> run(const std::vector<SweepPoint>& points,
                                Model model,
                                const core::PlatformConfig& base,
                                sim::Cycle warmup_cycles) const;

 private:
  unsigned jobs_;
  std::function<void(std::size_t, std::size_t)> progress_;
};

/// Aggregate comparison table: index, label, cycles, completed
/// transactions, QoS warnings, protocol errors; with `Model::kBoth` also
/// the TLM-vs-RTL error column.  `include_speed` adds kcycles/sec columns —
/// wall-clock dependent, so leave it off wherever byte-stable output
/// matters (the default everywhere except interactive reports).
stats::TextTable aggregate_table(const std::vector<PointOutcome>& outcomes,
                                 Model model, bool include_speed = false);

/// Per-point outcome dump, one CSV row per point: every counter external
/// tooling needs to diff a checkpointed sweep against a cold one (cycles,
/// ran cycles, retired transactions, violations, grants, bytes moved, and
/// the six stall-attribution classes summed across masters — per model).
/// Byte-stable: no wall-clock-derived columns.
void write_point_csv(std::ostream& os,
                     const std::vector<PointOutcome>& outcomes, Model model);

}  // namespace ahbp::sweep
