#pragma once

#include <cstdint>
#include <vector>

#include "ddr/commands.hpp"
#include "ddr/geometry.hpp"
#include "ddr/timing.hpp"
#include "sim/time.hpp"
#include "state/snapshot.hpp"

/// \file bank.hpp
/// Per-bank DDR state machine and the rank-level BankEngine.
///
/// This is the paper's §3.3: "each bank has a state machine separately" and
/// the FSM is modeled "as accurate as register transfer level".  The engine
/// is *shared semantics*: the transaction-level DDRC and the signal-level
/// DDRC both drive this exact engine, so any cycle difference between the
/// two models is caused by bus-side abstraction, never by divergent DRAM
/// rules.
///
/// All checks use absolute cycle arithmetic ("command legal at cycle t?")
/// rather than counters, which makes the rules directly testable.

namespace ahbp::ddr {

/// Externally visible bank state.
enum class BankState : std::uint8_t {
  kIdle = 0,        ///< no row open
  kActivating = 1,  ///< row opening, tRCD not yet elapsed
  kActive = 2,      ///< row open, column accesses legal
  kPrecharging = 3, ///< closing, tRP not yet elapsed
};

/// One bank's FSM with its timing guards.
class Bank {
 public:
  explicit Bank(const DdrTiming& t) : t_(&t) {}

  BankState state(sim::Cycle now) const noexcept;
  /// Row currently open (valid when state is kActivating/kActive).
  std::uint32_t open_row() const noexcept { return open_row_; }

  bool can_activate(sim::Cycle now) const noexcept;
  bool can_column(sim::Cycle now, std::uint32_t row) const noexcept;
  bool can_precharge(sim::Cycle now) const noexcept;

  /// Earliest cycle a column access to `row` could issue, assuming the
  /// needed precharge/activate commands issue as early as possible and
  /// ignoring rank-level constraints.  Used by the BI bank-readiness logic.
  sim::Cycle earliest_column(sim::Cycle now, std::uint32_t row) const noexcept;

  void activate(sim::Cycle now, std::uint32_t row) noexcept;
  /// Record a column access; `last_beat_at` is the cycle of the final data
  /// beat (the engine computes it from tCL/tWL and the beat count).
  void column(sim::Cycle now, bool is_write, sim::Cycle last_beat_at) noexcept;
  void precharge(sim::Cycle now) noexcept;

  /// Rank-level refresh forces all banks idle; the engine calls this after
  /// verifying every bank is idle.
  void refresh(sim::Cycle now, sim::Cycle trfc) noexcept;

  /// FSM registers only — the timing table is configuration.
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  const DdrTiming* t_;
  bool row_open_ = false;       ///< activate issued, not yet precharged
  std::uint32_t open_row_ = 0;
  sim::Cycle activated_at_ = 0;     ///< cycle of last ACTIVATE
  sim::Cycle activate_ready_ = 0;   ///< earliest next ACTIVATE (tRC/tRP/tRFC)
  sim::Cycle column_ready_ = 0;     ///< earliest next column cmd (tRCD)
  sim::Cycle precharge_ready_ = 0;  ///< earliest next PRECHARGE (tRAS/tWR/burst)
  sim::Cycle idle_at_ = 0;          ///< when a pending precharge completes
  bool ever_activated_ = false;
};

/// Rank-level engine: the banks plus the shared command/data bus rules
/// (tRRD, tCCD, single command per cycle, non-overlapping data bursts) and
/// refresh bookkeeping.
class BankEngine {
 public:
  BankEngine(const DdrTiming& timing, const Geometry& geom);

  const DdrTiming& timing() const noexcept { return timing_; }
  const Geometry& geometry() const noexcept { return geom_; }
  std::uint32_t banks() const noexcept { return geom_.banks; }

  /// True if `cmd` may issue at cycle `now` under every bank and rank rule.
  bool can_issue(const Command& cmd, sim::Cycle now) const noexcept;

  /// Issue the command (caller must have checked can_issue).  For column
  /// commands returns the cycle of the *first* data beat; otherwise 0.
  sim::Cycle issue(const Command& cmd, sim::Cycle now);

  /// At most one command per cycle: true if the command bus is free at now.
  bool command_slot_free(sim::Cycle now) const noexcept {
    return last_cmd_at_ != now || !any_cmd_issued_;
  }

  // --- queries used by the controller and the BI ---

  BankState bank_state(std::uint32_t b, sim::Cycle now) const;
  std::uint32_t open_row(std::uint32_t b) const;

  /// True if a column access to `c` could issue right now.
  bool column_ready(const Coord& c, sim::Cycle now) const;

  /// Bitmap of banks whose state is kIdle (used for the BI "idle bank"
  /// information the paper describes).
  std::uint32_t idle_bank_mask(sim::Cycle now) const;

  /// Earliest cycle the engine estimates a column access to `c` could
  /// issue (bank-local estimate; rank contention not included).
  sim::Cycle earliest_column(const Coord& c, sim::Cycle now) const;

  /// Refresh is due when tREFI has elapsed since the last refresh.
  bool refresh_due(sim::Cycle now) const noexcept;
  /// The cycle at which refresh_due() first becomes true (kNeverCycle when
  /// refresh is disabled).  Lower bound for idle-skip planning: an idle
  /// engine stays inert strictly before this cycle.
  sim::Cycle next_refresh_due() const noexcept {
    return timing_.tREFI == 0 ? sim::kNeverCycle
                              : last_refresh_ + timing_.tREFI;
  }
  /// True when a refresh could issue at `now` (all banks idle, bus free).
  bool can_refresh(sim::Cycle now) const noexcept;
  /// True while a refresh's tRFC window is in progress.
  bool in_refresh(sim::Cycle now) const noexcept {
    return now < refresh_busy_until_;
  }

  /// Data-bus occupancy: cycle after which the shared data bus is free.
  sim::Cycle data_bus_free_at() const noexcept { return data_free_at_; }

  // --- statistics (consumed by stats::DdrProfile) ---
  struct Counters {
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t read_beats = 0;
    std::uint64_t write_beats = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  const Bank& bank(std::uint32_t b) const;
  Bank& bank(std::uint32_t b);

  DdrTiming timing_;
  Geometry geom_;
  std::vector<Bank> banks_;
  sim::Cycle last_activate_any_ = 0;  ///< tRRD guard
  bool any_activate_ = false;
  sim::Cycle last_column_any_ = 0;    ///< tCCD guard
  bool any_column_ = false;
  sim::Cycle data_free_at_ = 0;       ///< shared data bus busy-until (exclusive)
  sim::Cycle last_cmd_at_ = 0;        ///< single command bus guard
  bool any_cmd_issued_ = false;
  sim::Cycle last_refresh_ = 0;
  sim::Cycle refresh_busy_until_ = 0;
  Counters counters_;
};

}  // namespace ahbp::ddr
