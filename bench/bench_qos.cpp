// Ablation D — the QoS guarantee (§2): "AMBA2.0 ... cannot guarantee
// master's QoS.  AHB+ is designed to address this issue."  A real-time
// stream shares the bus with an increasing number of DMA hogs; the bench
// sweeps the load and reports the RT master's grant-wait distribution and
// objective misses with the AHB+ QoS machinery on and off.

#include <cstdlib>
#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

namespace {

ahbp::core::PlatformConfig make_load(unsigned hogs, unsigned items,
                                     bool qos_on) {
  using namespace ahbp;
  core::PlatformConfig cfg = core::default_platform(1 + hogs, 17, items);
  // Master 0: the RT stream with a 48-cycle objective.
  cfg.masters[0].qos.cls = ahb::MasterClass::kRealTime;
  cfg.masters[0].qos.objective = 48;
  cfg.masters[0].traffic.kind = traffic::PatternKind::kRtStream;
  cfg.masters[0].traffic.period = 40;
  // Hogs: DMA bursts back to back.
  for (unsigned m = 1; m <= hogs; ++m) {
    cfg.masters[m].qos.cls = ahb::MasterClass::kNonRealTime;
    cfg.masters[m].qos.objective = 64;
    cfg.masters[m].traffic.kind = traffic::PatternKind::kDma;
    cfg.masters[m].traffic.dma_burst_beats = 16;
  }
  if (!qos_on) {
    // Strip the QoS stages: plain bank-aware round-robin remains.
    cfg.bus.filter_mask = ahb::with_filter(
        ahb::with_filter(ahb::kAllFilters, ahb::FilterBit::kUrgency, false),
        ahb::FilterBit::kQosBudget, false);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahbp;
  const unsigned items =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 250;

  std::cout << "=== Ablation D: QoS guarantee under load (TLM, RT stream +"
               " N DMA hogs, objective 48 cycles) ===\n\n";

  stats::TextTable t({"DMA hogs", "QoS filters", "RT wait avg", "RT wait p99",
                      "RT wait max", "RT misses", "hog bytes/cyc"});
  std::uint64_t max_qos_heavy = 0, max_noqos_heavy = 0;
  for (const unsigned hogs : {1u, 2u, 3u}) {
    for (const bool qos_on : {true, false}) {
      const auto cfg = make_load(hogs, items, qos_on);
      const auto r = core::run_tlm(cfg);
      const auto& rt = r.profile.masters[0];
      std::uint64_t hog_bytes = 0;
      for (unsigned m = 1; m <= hogs; ++m) {
        hog_bytes += r.profile.masters[m].bytes_read +
                     r.profile.masters[m].bytes_written;
      }
      if (hogs == 3 && qos_on) {
        max_qos_heavy = rt.grant_wait.summary().max();
      }
      if (hogs == 3 && !qos_on) {
        max_noqos_heavy = rt.grant_wait.summary().max();
      }
      t.add_row({std::to_string(hogs), qos_on ? "on" : "off",
                 stats::fmt_double(rt.grant_wait.summary().mean(), 1),
                 std::to_string(rt.grant_wait.percentile_upper(99)),
                 std::to_string(rt.grant_wait.summary().max()),
                 std::to_string(rt.qos_misses),
                 stats::fmt_double(static_cast<double>(hog_bytes) /
                                       static_cast<double>(r.cycles),
                                   3)});
    }
  }
  t.print(std::cout);

  std::cout << "\nexpected shape: the guarantee is about the tail — with the"
               " QoS filters on the\nRT master's worst-case wait stays near"
               " its objective as hogs are added; with\nthem off the tail"
               " grows with load (near-objective misses may occur either"
               " way).\n";
  const bool ok = max_qos_heavy < max_noqos_heavy;
  std::cout << "\nRESULT: " << (ok ? "OK" : "FAIL")
            << " (3-hog worst-case wait: qos-on " << max_qos_heavy
            << " < qos-off " << max_noqos_heavy << ")\n";
  return ok ? 0 : 1;
}
