#pragma once

#include <cstdint>

#include "ahb/types.hpp"

/// \file geometry.hpp
/// DDR device geometry and the address-to-(bank,row,column) mapping.
///
/// The mapping determines how sequential bus traffic spreads across banks,
/// which is exactly what the AHB+ bank-interleaving optimization exploits —
/// so it is shared protocol semantics used identically by both models.

namespace ahbp::ddr {

/// Physical coordinates of one column access.
struct Coord {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  bool operator==(const Coord&) const = default;
};

/// Address interleaving scheme.
enum class Mapping : std::uint8_t {
  /// [ row | bank | col | byte ] — consecutive rows of one bank are far
  /// apart; sequential streams cross banks at column-page boundaries.
  /// This is the interleaving-friendly default.
  kRowBankCol = 0,
  /// [ bank | row | col | byte ] — each bank owns a contiguous quarter of
  /// the address space; sequential streams stay in one bank (worst case for
  /// interleaving; useful as an ablation).
  kBankRowCol = 1,
};

struct Geometry {
  std::uint32_t banks = 4;       ///< DDR1 devices have 4 internal banks
  std::uint32_t rows = 4096;
  std::uint32_t cols = 512;      ///< columns per row
  std::uint32_t col_bytes = 4;   ///< bytes per column (bus word)
  Mapping mapping = Mapping::kRowBankCol;

  /// Total device capacity in bytes.
  std::uint64_t capacity() const noexcept {
    return static_cast<std::uint64_t>(banks) * rows * cols * col_bytes;
  }

  /// Bytes covered by one open row of one bank (the "page size").
  std::uint64_t row_bytes() const noexcept {
    return static_cast<std::uint64_t>(cols) * col_bytes;
  }

  /// Map a byte address (offset within the DDR region) to coordinates.
  /// Addresses beyond capacity wrap (the controller masks them).
  Coord decode(ahb::Addr offset) const noexcept;

  /// Inverse of decode(): coordinates back to the byte offset of the
  /// column's first byte.
  ahb::Addr encode(const Coord& c) const noexcept;
};

}  // namespace ahbp::ddr
