// Bank interleaving through the BI (§2, §3.4): the arbiter announces the
// next transaction to the DDR controller ahead of its address phase, so
// the controller can open the target bank while the current transfer
// still streams.  This example shows the mechanism directly: two masters
// ping-pong between two banks, and we compare DDR command flow and
// runtime with the BI hints on and off.

#include <iostream>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "stats/report.hpp"

namespace {

ahbp::core::PlatformConfig make_pingpong(bool hints) {
  using namespace ahbp;
  core::PlatformConfig cfg = core::default_platform(2, 7, 400);
  // Both masters stream sequentially.  Offsetting the second window by one
  // row page keeps the two streams in *different* banks at any moment, so
  // the next-transaction hint can open the other stream's bank while the
  // current one transfers — the interleaving the BI exists for.  (Had the
  // windows been bank-aligned on top of each other, the streams would
  // fight over one bank and speculation could only thrash.)
  for (auto& m : cfg.masters) {
    m.traffic.kind = traffic::PatternKind::kDma;
    m.traffic.dma_burst_beats = 8;
  }
  cfg.masters[1].traffic.base += cfg.geom.row_bytes();
  cfg.bus.bi_hints_enabled = hints;
  return cfg;
}

}  // namespace

int main() {
  using namespace ahbp;

  stats::TextTable t({"BI hints", "cycles", "row hit", "hint ACT",
                      "row conflicts", "throughput B/cyc", "util"});
  sim::Cycle with_hints = 0, without_hints = 0;
  for (const bool hints : {true, false}) {
    const auto r = core::run_tlm(make_pingpong(hints));
    (hints ? with_hints : without_hints) = r.cycles;
    t.add_row({hints ? "on" : "off", std::to_string(r.cycles),
               stats::fmt_percent(r.profile.ddr.row_hit_rate()),
               std::to_string(r.profile.ddr.hits.hint_activates),
               std::to_string(r.profile.ddr.hits.row_conflicts),
               stats::fmt_double(r.profile.bus.throughput(), 3),
               stats::fmt_percent(r.profile.bus.utilization())});
  }

  std::cout << "two DMA streams ping-ponging across DDR banks:\n\n";
  t.print(std::cout);
  std::cout << "\nwith the BI hint the controller pre-activates the next"
               " stream's bank during\nthe current data phase (hint ACT"
               " column) — the §2 'bank interleaving' that\nlets the next"
               " data start right after the previous data finishes.\n";
  std::cout << "\ncycles " << (with_hints <= without_hints ? "saved: " : "lost: ")
            << (with_hints <= without_hints ? without_hints - with_hints
                                            : with_hints - without_hints)
            << "\n";
  return 0;
}
