#include "core/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "assertions/assert.hpp"
#include "assertions/violation.hpp"
#include "obs/selfprof.hpp"
#include "obs/timeline.hpp"
#include "rtl/fabric.hpp"
#include "sim/cycle_kernel.hpp"
#include "tlm/bus.hpp"
#include "tlm/ddrc.hpp"
#include "tlm/master.hpp"

namespace ahbp::core {

std::string_view to_string(ModelKind m) noexcept {
  return m == ModelKind::kTlm ? "tlm" : "rtl";
}

bool model_kind_from_string(std::string_view name, ModelKind& out) {
  if (name == "tlm") {
    out = ModelKind::kTlm;
  } else if (name == "rtl") {
    out = ModelKind::kRtl;
  } else {
    return false;
  }
  return true;
}

// ------------------------------------------------------------------ Impl --

struct Platform::Impl {
  PlatformConfig cfg;
  ModelKind model;
  double wall = 0.0;  ///< this instance's accumulated simulation time

  // --- transaction-level assembly (mirrors the historical run_tlm) ---
  sim::CycleKernel kernel;
  std::unique_ptr<ahb::QosRegisterFile> qos;
  chk::ViolationLog log;
  std::unique_ptr<tlm::TlmDdrc> ddrc;
  std::unique_ptr<tlm::AhbPlusBus> bus;
  std::vector<std::unique_ptr<tlm::TlmMaster>> masters;
  sim::Cycle last_completion = 0;

  // --- signal-level assembly ---
  std::unique_ptr<rtl::RtlFabric> fabric;

  // --- capture taps (enable_capture; shared by both models) ---
  std::vector<std::unique_ptr<traffic::TraceRecorder>> recorders;

  // --- observability (enable_timeline / enable_self_profile / progress) ---
  std::uint64_t expand_ns = 0;  ///< stimulus-expansion time at construction
  std::ostream* progress = nullptr;
  double progress_interval = 1.0;

  bool tlm_done() const {
    for (const auto& m : masters) {
      if (!m->finished()) {
        return false;
      }
    }
    return bus->quiescent();
  }

  /// TLM execution with temporal decoupling.  quantum <= 1 is the literal
  /// cycle-by-cycle path (bit-exact legacy behaviour); quantum > 1 leaps
  /// provably idle stretches — up to a quantum at a time — after the bus
  /// and every master publish a conservative next-interesting-cycle bound,
  /// bulk-replaying the per-cycle bookkeeping the gap owes.  Identical
  /// simulated state either way; only wall-clock differs.
  sim::Cycle run_tlm(sim::Cycle quota) {
    const sim::Cycle quantum = cfg.sim.quantum;
    if (quantum <= 1) {
      return kernel.run_until([this] { return tlm_done(); }, quota);
    }
    sim::Cycle ran = 0;
    while (ran < quota && !tlm_done()) {
      const sim::Cycle now = kernel.now();
      sim::Cycle bound = bus->idle_until(now);
      for (const auto& m : masters) {
        if (bound <= now) {
          break;
        }
        bound = std::min(bound, m->next_issue_at());
      }
      if (bound > now) {
        // Every component is a proven no-op over [now, bound): leap, but
        // never past the quantum (sync boundary) or the caller's quota.
        const sim::Cycle cap = std::min<sim::Cycle>(quantum, quota - ran);
        const sim::Cycle skip = std::min<sim::Cycle>(bound - now, cap);
        bus->skip_idle(now, now + skip);
        kernel.skip_to(now + skip);
        ran += skip;
      } else {
        // Busy cycle: step directly (the loop head is the predicate check,
        // so this is exactly one run_until iteration without re-testing).
        kernel.step();
        ++ran;
      }
    }
    return ran;
  }
};

Platform::Platform(const PlatformConfig& cfg, ModelKind model)
    : impl_(std::make_unique<Impl>()) {
  AHBP_ASSERT_MSG(!cfg.masters.empty(), "platform needs at least one master");
  impl_->cfg = cfg;
  impl_->model = model;
  // Pull trace-backed stimulus off disk exactly once, into this instance's
  // own config copy: expansion below and checkpoint embedding both read
  // the resolved text, so the platform is self-describing from here on.
  resolve_stimulus(impl_->cfg);

  if (model == ModelKind::kTlm) {
    Impl& im = *impl_;
    const unsigned n = static_cast<unsigned>(cfg.masters.size());
    im.qos = std::make_unique<ahb::QosRegisterFile>(n);
    for (unsigned m = 0; m < n; ++m) {
      im.qos->program(static_cast<ahb::MasterId>(m), cfg.masters[m].qos);
    }
    im.ddrc = std::make_unique<tlm::TlmDdrc>(ddr_channel_configs(cfg),
                                             cfg.interleave, cfg.ddr_base);
    im.ddrc->channels().set_step_threads(cfg.sim.ddr_threads);
    im.bus = std::make_unique<tlm::AhbPlusBus>(
        cfg.bus, *im.qos, *im.ddrc, n,
        cfg.enable_checkers ? &im.log : nullptr);
    im.kernel.add(*im.bus);

    const auto e0 = std::chrono::steady_clock::now();
    auto scripts = expand_stimulus(im.cfg);
    im.expand_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - e0)
            .count());
    for (unsigned m = 0; m < n; ++m) {
      im.masters.push_back(std::make_unique<tlm::TlmMaster>(
          static_cast<ahb::MasterId>(m), *im.bus, std::move(scripts[m])));
      im.masters[m]->on_complete = [&im](const ahb::Transaction&) {
        im.last_completion = im.kernel.now();
      };
      im.kernel.add(*im.masters[m]);
    }
  } else {
    rtl::RtlFabricConfig fc;
    fc.bus = cfg.bus;
    fc.timing = cfg.timing;
    fc.geom = cfg.geom;
    fc.interleave = cfg.interleave;
    fc.ddr_channels = cfg.ddr_channels;
    fc.ddr_base = cfg.ddr_base;
    fc.enable_checkers = cfg.enable_checkers;
    for (const MasterSpec& m : cfg.masters) {
      fc.qos.push_back(m.qos);
    }
    const auto e0 = std::chrono::steady_clock::now();
    auto scripts = expand_stimulus(impl_->cfg);
    impl_->expand_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - e0)
            .count());
    impl_->fabric = std::make_unique<rtl::RtlFabric>(fc, std::move(scripts));
    impl_->fabric->ddrc().channels().set_step_threads(cfg.sim.ddr_threads);
  }
}

Platform::~Platform() = default;

ModelKind Platform::model() const noexcept { return impl_->model; }

const PlatformConfig& Platform::config() const noexcept { return impl_->cfg; }

sim::Cycle Platform::now() const {
  return impl_->model == ModelKind::kTlm ? impl_->kernel.now()
                                         : impl_->fabric->cycle();
}

bool Platform::finished() const {
  return impl_->model == ModelKind::kTlm ? impl_->tlm_done()
                                         : impl_->fabric->finished();
}

sim::Cycle Platform::run(sim::Cycle n) {
  Impl& im = *impl_;
  const sim::Cycle done = now();
  const sim::Cycle budget =
      im.cfg.max_cycles > done ? im.cfg.max_cycles - done : 0;
  const sim::Cycle quota = n < budget ? n : budget;
  if (quota == 0) {
    return 0;
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim::Cycle ran = 0;
  if (im.progress == nullptr) {
    if (im.model == ModelKind::kTlm) {
      ran = im.run_tlm(quota);
    } else {
      ran = im.fabric->run(quota);
    }
  } else {
    // Heartbeat path: execute in chunks so wall clock can be sampled
    // between them.  The chunk is a multiple of 256 — RtlFabric::run
    // samples finished() at absolute 256-cycle boundaries, so chunked
    // execution stops at exactly the cycles an uninterrupted run would
    // (the TLM kernel checks its predicate every cycle, so any chunk
    // size is safe there).
    constexpr sim::Cycle kChunk = 25'600;
    auto last_beat = t0;
    while (ran < quota) {
      const sim::Cycle want = std::min<sim::Cycle>(kChunk, quota - ran);
      sim::Cycle got = 0;
      if (im.model == ModelKind::kTlm) {
        got = im.run_tlm(want);
      } else {
        got = im.fabric->run(want);
      }
      ran += got;
      if (got < want) {
        break;  // finished (or hit an internal stop) before the chunk ran out
      }
      const auto tn = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(tn - last_beat).count() >=
          im.progress_interval) {
        const double secs = std::chrono::duration<double>(tn - t0).count();
        char line[160];
        std::snprintf(line, sizeof line,
                      "# %s: cycle %llu | %.1fs | %.0f kcycles/s\n",
                      std::string(to_string(im.model)).c_str(),
                      static_cast<unsigned long long>(done + ran), secs,
                      secs > 0.0 ? static_cast<double>(ran) / secs / 1000.0
                                 : 0.0);
        (*im.progress) << line << std::flush;
        last_beat = tn;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  im.wall += std::chrono::duration<double>(t1 - t0).count();
  return ran;
}

void Platform::run_to_completion() {
  // run() already caps at max_cycles total and stops when finished.
  run(impl_->cfg.max_cycles);
}

SimResult Platform::result() const {
  const Impl& im = *impl_;
  SimResult r;
  if (im.model == ModelKind::kTlm) {
    r.model = "tlm";
    r.finished = im.tlm_done();
    r.cycles = im.last_completion;
    r.ran_cycles = im.kernel.now();
    for (const auto& m : im.masters) {
      r.completed += m->completed();
    }
    r.profile.masters = im.bus->master_profiles();
    r.profile.bus = im.bus->bus_profile();
    r.profile.bus.grants = im.bus->arbiter().grants();
    r.profile.write_buffer = im.bus->write_buffer().profile();
    r.profile.ddr.commands = im.ddrc->channels().command_counters();
    r.profile.ddr.hits = im.ddrc->channels().hit_stats();
    r.profile.total_cycles = im.last_completion;
    r.profile.completed_txns = r.completed;
    r.protocol_errors = im.log.errors();
    r.qos_warnings = im.log.warnings();
    r.first_violations = im.log.to_string();
    r.profile.violation_rules = im.log.rule_counts();
    r.kernel_activity = im.kernel.evaluations();
  } else {
    const rtl::RtlFabric& f = *im.fabric;
    r.model = "rtl";
    r.finished = f.finished();
    r.cycles = f.last_completion();
    r.ran_cycles = f.cycle();
    r.completed = f.completed_txns();
    r.profile = f.profile();
    r.protocol_errors = f.violations().errors();
    r.qos_warnings = f.violations().warnings();
    r.first_violations = f.violations().to_string();
    r.profile.violation_rules = f.violations().rule_counts();
    r.kernel_activity = f.kernel().stats().deltas;
  }
  r.wall_seconds = im.wall;
  return r;
}

void Platform::enable_vcd(std::ostream& os) {
  if (impl_->model != ModelKind::kRtl) {
    // Precondition violation, not a snapshot failure — keep StateError for
    // genuinely bad checkpoint streams.
    throw std::logic_error("VCD dumping needs the signal-level model");
  }
  impl_->fabric->enable_vcd(os);
}

void Platform::enable_timeline(obs::Timeline& tl) {
  Impl& im = *impl_;
  if (im.model == ModelKind::kTlm) {
    const unsigned pid = tl.add_process("tlm");
    im.bus->set_timeline(tl, pid);
    im.ddrc->channels().set_timeline(&tl, pid);
  } else {
    const unsigned pid = tl.add_process("rtl");
    im.fabric->enable_timeline(tl, pid);
  }
}

void Platform::enable_self_profile(obs::SelfProfiler& sp) {
  Impl& im = *impl_;
  // Stimulus expansion already happened (in the constructor); report it
  // retroactively so the per-phase table covers the whole setup cost.
  sp.add(sp.phase("platform.expand-stimulus"), im.expand_ns);
  if (im.model == ModelKind::kTlm) {
    im.kernel.set_profiler(&sp);
  } else {
    im.fabric->set_profiler(&sp);
  }
}

void Platform::set_progress(std::ostream* os, double interval_sec) {
  impl_->progress = os;
  impl_->progress_interval = interval_sec > 0.0 ? interval_sec : 1.0;
}

void Platform::enable_capture() {
  Impl& im = *impl_;
  if (!im.recorders.empty()) {
    return;  // already tapped
  }
  const unsigned n = static_cast<unsigned>(im.cfg.masters.size());
  im.recorders.reserve(n);
  for (unsigned m = 0; m < n; ++m) {
    im.recorders.push_back(std::make_unique<traffic::TraceRecorder>(
        static_cast<ahb::MasterId>(m)));
    if (im.model == ModelKind::kTlm) {
      im.masters[m]->set_trace_recorder(im.recorders[m].get());
    } else {
      im.fabric->set_trace_recorder(m, im.recorders[m].get());
    }
  }
}

const traffic::TraceRecorder& Platform::capture(ahb::MasterId m) const {
  const Impl& im = *impl_;
  if (im.recorders.empty()) {
    throw std::logic_error("Platform::capture without enable_capture()");
  }
  if (m >= im.recorders.size()) {
    throw std::logic_error("Platform::capture: no master " +
                           std::to_string(m));
  }
  return *im.recorders[m];
}

void Platform::checkpoint_at(sim::Cycle at, state::StateWriter& w) {
  const sim::Cycle done = now();
  if (at > done) {
    run(at - done);
  }
  save_state(w);
}

void Platform::save_state(state::StateWriter& w) const {
  const Impl& im = *impl_;
  w.begin("platform");
  w.put_u8(static_cast<std::uint8_t>(im.model));
  if (im.model == ModelKind::kTlm) {
    w.put_u64(im.last_completion);
    im.kernel.save_state(w);
    im.qos->save_state(w);
    im.log.save_state(w);
    im.ddrc->channels().save_state(w);
    im.bus->save_state(w);
    w.put_u64(im.masters.size());
    for (const auto& m : im.masters) {
      m->save_state(w);
    }
  } else {
    im.fabric->save_state(w);
  }
  w.end();
}

void Platform::restore_state(state::StateReader& r) {
  Impl& im = *impl_;
  r.enter("platform");
  const auto snap_model = static_cast<ModelKind>(r.get_u8());
  if (snap_model != im.model) {
    throw state::StateError(
        "checkpoint was taken on the " + std::string(to_string(snap_model)) +
        " model but this platform is " + std::string(to_string(im.model)));
  }
  if (im.model == ModelKind::kTlm) {
    im.last_completion = r.get_u64();
    im.kernel.restore_state(r);
    im.qos->restore_state(r);
    im.log.restore_state(r);
    im.ddrc->channels().restore_state(r);
    im.bus->restore_state(r);
    const std::uint64_t n = r.get_u64();
    if (n != im.masters.size()) {
      throw state::StateError(
          "checkpoint has " + std::to_string(n) + " masters, platform has " +
          std::to_string(im.masters.size()));
    }
    for (auto& m : im.masters) {
      m->restore_state(r);
    }
  } else {
    im.fabric->restore_state(r);
  }
  r.leave();
}

// ------------------------------------------------------ checkpoint files --

void write_checkpoint(state::StateWriter& w, const Platform& p,
                      std::string_view scenario_text) {
  w.begin("checkpoint");
  w.put_str(to_string(p.model()));
  w.put_u64(p.now());
  w.put_str(scenario_text);
  // Trace-backed masters: embed the resolved trace content.  The scenario
  // text only names the trace *path*; a restore must not depend on that
  // file still existing (the Platform resolved its config at construction,
  // so the text is guaranteed present here).
  const std::vector<MasterSpec>& masters = p.config().masters;
  std::uint64_t trace_masters = 0;
  for (const MasterSpec& m : masters) {
    trace_masters += m.traffic.is_trace() ? 1u : 0u;
  }
  w.put_u64(trace_masters);
  for (std::size_t i = 0; i < masters.size(); ++i) {
    if (masters[i].traffic.is_trace()) {
      w.put_u64(i);
      w.put_str(masters[i].traffic.trace_text);
    }
  }
  w.end();
  p.save_state(w);
}

void write_checkpoint_file(const std::string& path, const Platform& p,
                           std::string_view scenario_text) {
  state::StateWriter w;
  write_checkpoint(w, p, scenario_text);
  w.write_file(path);
}

CheckpointInfo read_checkpoint_header(state::StateReader& r) {
  CheckpointInfo info;
  r.enter("checkpoint");
  info.model = r.get_str();
  info.taken_at = r.get_u64();
  info.scenario_text = r.get_str();
  const std::uint64_t traces = r.get_u64();
  info.traces.reserve(traces);
  for (std::uint64_t i = 0; i < traces; ++i) {
    const std::uint64_t master = r.get_u64();
    info.traces.emplace_back(master, r.get_str());
  }
  r.leave();
  return info;
}

void apply_embedded_traces(PlatformConfig& cfg, const CheckpointInfo& info) {
  for (const auto& [master, text] : info.traces) {
    if (master >= cfg.masters.size()) {
      throw state::StateError("checkpoint embeds a trace for master " +
                              std::to_string(master) + " but the scenario"
                              " has only " +
                              std::to_string(cfg.masters.size()) +
                              " masters");
    }
    traffic::StimulusSpec& spec = cfg.masters[master].traffic;
    if (!spec.is_trace()) {
      throw state::StateError("checkpoint embeds a trace for master " +
                              std::to_string(master) + " but the scenario"
                              " declares it synthetic");
    }
    spec.trace_text = text;
    spec.trace_loaded = true;  // embedded content wins even when empty
  }
}

SimResult run_from(const PlatformConfig& cfg, ModelKind model,
                   state::StateReader& r) {
  Platform p(cfg, model);
  p.restore_state(r);
  p.run_to_completion();
  return p.result();
}

}  // namespace ahbp::core
