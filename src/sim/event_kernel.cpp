#include "sim/event_kernel.hpp"

#include <algorithm>
#include <utility>

#include "obs/selfprof.hpp"

namespace ahbp::sim {

// ---------------------------------------------------------------- Process

Process::Process(EventKernel& kernel, std::string name, Body body)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)) {}

void Process::trigger() { kernel_.make_runnable(*this); }

void Process::run() {
  scheduled_ = false;
  body_();
}

// -------------------------------------------------------------- SignalBase

SignalBase::SignalBase(EventKernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  kernel_.register_signal(*this);
}

SignalBase::~SignalBase() { kernel_.unregister_signal(*this); }

void SignalBase::subscribe(Process& proc, Edge edge) {
  subs_.push_back(Subscription{&proc, edge});
}

void SignalBase::request_update() {
  if (!update_pending_) {
    update_pending_ = true;
    kernel_.request_update(*this);
  }
}

void SignalBase::notify(bool rose, bool fell) {
  for (const Subscription& s : subs_) {
    const bool fire = s.edge == Edge::kAny || (s.edge == Edge::kPos && rose) ||
                      (s.edge == Edge::kNeg && fell);
    if (fire) {
      s.proc->trigger();
    }
  }
}

// ------------------------------------------------------------- EventKernel

void EventKernel::make_runnable(Process& p) {
  if (!p.scheduled_) {
    p.scheduled_ = true;
    runnable_.push_back(&p);
  }
}

void EventKernel::request_update(SignalBase& s) { updates_.push_back(&s); }

void EventKernel::register_signal(SignalBase& s) { signals_.push_back(&s); }

void EventKernel::unregister_signal(SignalBase& s) {
  signals_.erase(std::remove(signals_.begin(), signals_.end(), &s),
                 signals_.end());
}

void EventKernel::schedule(Tick delay, EventFn fn) {
  const Tick at = now_ + delay;
  if (delay < kTimedWheel) {
    // Near-future (the clock's next-edge case): O(1) bucket append.  The
    // window is narrower than the ring, so a bucket never mixes timestamps,
    // and appends arrive in seq order by construction.
    timed_ring_[at % kTimedWheel].push_back(TimedEvent{at, seq_++, std::move(fn)});
  } else {
    timed_heap_.push_back(TimedEvent{at, seq_++, std::move(fn)});
    std::push_heap(timed_heap_.begin(), timed_heap_.end(), TimedEventLater{});
  }
  ++timed_count_;
}

Tick EventKernel::next_event_time() const noexcept {
  Tick best = timed_heap_.empty() ? kNeverTick : timed_heap_.front().at;
  for (const auto& bucket : timed_ring_) {
    if (!bucket.empty() && bucket.front().at < best) {
      best = bucket.front().at;
    }
  }
  return best;
}

void EventKernel::dispatch_at(Tick at) {
  // Handlers may schedule new events for this same timestamp (delay 0);
  // keep collecting until the timestep is exhausted, exactly like the old
  // top()/pop() loop did.
  for (;;) {
    dispatch_scratch_.clear();
    std::vector<TimedEvent>& bucket = timed_ring_[at % kTimedWheel];
    for (TimedEvent& e : bucket) {
      dispatch_scratch_.push_back(std::move(e));
    }
    bucket.clear();
    while (!timed_heap_.empty() && timed_heap_.front().at == at) {
      std::pop_heap(timed_heap_.begin(), timed_heap_.end(), TimedEventLater{});
      dispatch_scratch_.push_back(std::move(timed_heap_.back()));
      timed_heap_.pop_back();
    }
    if (dispatch_scratch_.empty()) {
      return;
    }
    // Bucket entries and heap pops are each seq-sorted, but interleave
    // arbitrarily; restore global FIFO order among same-time events.
    std::sort(dispatch_scratch_.begin(), dispatch_scratch_.end(),
              [](const TimedEvent& a, const TimedEvent& b) {
                return a.seq < b.seq;
              });
    timed_count_ -= dispatch_scratch_.size();
    for (TimedEvent& e : dispatch_scratch_) {
      ++stats_.timed_events;
      e.fn();
    }
  }
}

void EventKernel::run_delta_rounds() {
  // Each round: evaluate all runnable processes, then commit all signal
  // writes.  Commits that change values re-arm subscribed processes for the
  // next round.  Loop until quiescent.  The scratch vectors are members so
  // their capacity survives across rounds and steps — the steady-state loop
  // never allocates.
  while (!runnable_.empty() || !updates_.empty()) {
    ++stats_.deltas;

    run_scratch_.clear();
    run_scratch_.swap(runnable_);
    for (Process* p : run_scratch_) {
      ++stats_.process_activations;
      if (profiler_ == nullptr) {
        p->run();
      } else {
        if (p->prof_id_ == ~0U) {
          p->prof_id_ = profiler_->phase("rtl." + p->name_);
        }
        obs::ScopedTimer t(profiler_, p->prof_id_);
        p->run();
      }
    }

    commit_scratch_.clear();
    commit_scratch_.swap(updates_);
    for (SignalBase* s : commit_scratch_) {
      s->update_pending_ = false;
      if (s->commit()) {
        ++stats_.signal_commits;
      }
    }
  }
}

void EventKernel::settle() { run_delta_rounds(); }

void EventKernel::save_signals(state::StateWriter& w) const {
  if (!runnable_.empty() || !updates_.empty()) {
    throw state::StateError(
        "EventKernel: cannot snapshot mid-delta (processes runnable or"
        " commits pending)");
  }
  w.begin("signals");
  w.put_u64(signals_.size());
  for (const SignalBase* s : signals_) {
    w.put_str(s->name());
    w.put_u64(s->snapshot_value());
  }
  w.put_u64(stats_.deltas);
  w.put_u64(stats_.process_activations);
  w.put_u64(stats_.signal_commits);
  w.put_u64(stats_.timed_events);
  w.end();
}

void EventKernel::restore_signals(state::StateReader& r) {
  r.enter("signals");
  const std::uint64_t n = r.get_u64();
  if (n != signals_.size()) {
    throw state::StateError(
        "EventKernel: snapshot has " + std::to_string(n) +
        " signals, this platform has " + std::to_string(signals_.size()) +
        " (topology mismatch)");
  }
  for (SignalBase* s : signals_) {
    const std::string name = r.get_str();
    if (name != s->name()) {
      throw state::StateError("EventKernel: signal order mismatch: snapshot"
                              " has '" + name + "', platform has '" +
                              std::string(s->name()) + "'");
    }
    s->restore_value(r.get_u64());
  }
  stats_.deltas = r.get_u64();
  stats_.process_activations = r.get_u64();
  stats_.signal_commits = r.get_u64();
  stats_.timed_events = r.get_u64();
  r.leave();
}

void EventKernel::run_until(Tick until) {
  run_delta_rounds();
  for (;;) {
    const Tick at = next_event_time();
    if (at == kNeverTick || at > until) {
      break;
    }
    now_ = at;
    dispatch_at(at);
    run_delta_rounds();
  }
  if (now_ < until) {
    now_ = until;
  }
}

}  // namespace ahbp::sim
