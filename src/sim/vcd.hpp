#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_kernel.hpp"
#include "sim/time.hpp"

/// \file vcd.hpp
/// Minimal Value Change Dump (VCD) writer for the event-driven kernel.
///
/// Signal-level debugging is the one place where the pin-accurate model is
/// *more* convenient than the TLM, so the reference model supports dumping
/// selected signals to a standard VCD file viewable in GTKWave.  The writer
/// samples on demand: call sample() whenever the testbench wants committed
/// values recorded (typically once per settled timestep).

namespace ahbp::sim {

class VcdWriter {
 public:
  /// \param out  stream the VCD text is written to (kept by reference).
  explicit VcdWriter(std::ostream& out);

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Register a signal before writing the header.  Width is in bits (1 for
  /// bool signals; wider signals dump as binary vectors of their numeric
  /// value_string()).
  void add_signal(const SignalBase& sig, unsigned width = 1);

  /// Emit the VCD header ($timescale, $var declarations, $enddefinitions).
  void write_header(const std::string& timescale = "1ns");

  /// Record current values of all registered signals at time `t`, emitting
  /// changes only.
  void sample(Tick t);

  /// Number of value changes emitted (for tests).
  std::uint64_t changes() const noexcept { return changes_; }

 private:
  struct Entry {
    const SignalBase* sig;
    std::string id;       // VCD short identifier
    unsigned width;
    std::string last;     // last emitted value_string, empty = never
  };

  static std::string make_id(std::size_t index);
  static std::string to_binary(const std::string& decimal, unsigned width);

  std::ostream& out_;
  std::vector<Entry> entries_;
  bool header_written_ = false;
  bool first_sample_ = true;
  std::uint64_t changes_ = 0;
};

}  // namespace ahbp::sim
