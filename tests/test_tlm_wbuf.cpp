// The AHB+ write buffer: capacity, FIFO order, overlap detection (RAW
// ordering), urgency escalation and profiling counters.

#include <gtest/gtest.h>

#include "assertions/assert.hpp"
#include "tlm/write_buffer.hpp"

namespace {

using namespace ahbp;
using tlm::WriteBuffer;

ahb::Transaction write_txn(ahb::Addr addr, unsigned beats,
                           ahb::Burst burst = ahb::Burst::kIncr) {
  ahb::Transaction t;
  t.dir = ahb::Dir::kWrite;
  t.addr = addr;
  t.size = ahb::Size::kWord;
  t.burst = burst;
  t.beats = beats;
  t.data.assign(beats, 0xAB);
  return t;
}

TEST(WriteBuffer, DisabledAbsorbsNothing) {
  WriteBuffer w(4, 1, /*enabled=*/false);
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.absorb(write_txn(0x100, 4), 0));
  EXPECT_FALSE(w.requesting());
}

TEST(WriteBuffer, ZeroDepthActsDisabled) {
  WriteBuffer w(0, 1, /*enabled=*/true);
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.absorb(write_txn(0x100, 4), 0));
}

TEST(WriteBuffer, AbsorbUpToDepth) {
  WriteBuffer w(2, 1, true);
  EXPECT_TRUE(w.absorb(write_txn(0x100, 4), 0));
  EXPECT_TRUE(w.absorb(write_txn(0x200, 4), 1));
  EXPECT_TRUE(w.full());
  EXPECT_FALSE(w.absorb(write_txn(0x300, 4), 2));
  EXPECT_EQ(w.occupancy(), 2u);
}

TEST(WriteBuffer, FifoOrderPreserved) {
  WriteBuffer w(4, 1, true);
  w.absorb(write_txn(0x100, 1), 0);
  w.absorb(write_txn(0x200, 1), 1);
  w.absorb(write_txn(0x300, 1), 2);
  EXPECT_EQ(w.front().addr, 0x100u);
  EXPECT_EQ(w.peek(1).addr, 0x200u);
  EXPECT_EQ(w.pop_front(10).addr, 0x100u);
  EXPECT_EQ(w.front().addr, 0x200u);
}

TEST(WriteBuffer, RejectsReads) {
  WriteBuffer w(4, 1, true);
  ahb::Transaction t = write_txn(0x0, 1);
  t.dir = ahb::Dir::kRead;
  EXPECT_THROW(w.absorb(t, 0), chk::ModelAssertError);
}

TEST(WriteBuffer, RequestingFollowsWatermark) {
  WriteBuffer w(4, 2, true);
  EXPECT_FALSE(w.requesting());
  w.absorb(write_txn(0x100, 1), 0);
  EXPECT_FALSE(w.requesting());  // below watermark 2
  w.absorb(write_txn(0x200, 1), 1);
  EXPECT_TRUE(w.requesting());
}

TEST(WriteBuffer, UrgentWhenFull) {
  WriteBuffer w(1, 1, true);
  EXPECT_FALSE(w.urgent());
  w.absorb(write_txn(0x100, 1), 0);
  EXPECT_TRUE(w.urgent());
}

TEST(WriteBuffer, HazardFlagEscalatesAndClears) {
  WriteBuffer w(4, 4, true);
  w.absorb(write_txn(0x100, 1), 0);
  EXPECT_FALSE(w.urgent());
  w.flag_hazard();
  EXPECT_TRUE(w.urgent());
  EXPECT_TRUE(w.requesting());  // urgency overrides the watermark
  w.clear_hazard_if_unneeded(/*still=*/true);
  EXPECT_TRUE(w.urgent());
  w.clear_hazard_if_unneeded(/*still=*/false);
  EXPECT_FALSE(w.urgent());
}

TEST(WriteBuffer, OverlapsIncrRange) {
  WriteBuffer w(4, 1, true);
  w.absorb(write_txn(0x100, 4), 0);  // covers [0x100, 0x110)
  EXPECT_TRUE(w.overlaps(0x10C, 0x110));
  EXPECT_TRUE(w.overlaps(0x0F0, 0x104));
  EXPECT_FALSE(w.overlaps(0x110, 0x120));
  EXPECT_FALSE(w.overlaps(0x0F0, 0x100));
}

TEST(WriteBuffer, OverlapsWrapWindow) {
  WriteBuffer w(4, 1, true);
  // WRAP4 of words at 0x38 wraps within [0x30, 0x40).
  w.absorb(write_txn(0x38, 4, ahb::Burst::kWrap4), 0);
  EXPECT_TRUE(w.overlaps(0x30, 0x34));  // wrapped portion covered
  EXPECT_FALSE(w.overlaps(0x40, 0x44));
}

TEST(WriteBuffer, OverlapClearsAfterDrain) {
  WriteBuffer w(4, 1, true);
  w.absorb(write_txn(0x100, 4), 0);
  ASSERT_TRUE(w.overlaps(0x100, 0x104));
  w.pop_front(5);
  EXPECT_FALSE(w.overlaps(0x100, 0x104));
}

TEST(WriteBuffer, ProfileCountersTrackLifecycle) {
  WriteBuffer w(2, 1, true);
  w.absorb(write_txn(0x100, 1), 0);
  w.absorb(write_txn(0x200, 1), 0);
  w.count_full_stall();
  w.count_bypass();
  w.count_forward();
  w.pop_front(3);
  w.sample();
  const auto& p = w.profile();
  EXPECT_EQ(p.absorbed, 2u);
  EXPECT_EQ(p.drained, 1u);
  EXPECT_EQ(p.full_stalls, 1u);
  EXPECT_EQ(p.bypassed, 1u);
  EXPECT_EQ(p.forwards, 1u);
  EXPECT_EQ(p.occupancy.count(), 1u);
  EXPECT_EQ(p.occupancy.max(), 1u);
}

TEST(WriteBuffer, PopEmptyAsserts) {
  WriteBuffer w(2, 1, true);
  EXPECT_THROW(w.pop_front(0), chk::ModelAssertError);
  EXPECT_THROW(w.front(), chk::ModelAssertError);
}

}  // namespace
