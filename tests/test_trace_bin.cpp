// Binary trace format: round-trips against every pattern, byte-determinism,
// cross-format equivalence with the text loader, malformed-image rejection
// (header and record level), and the seekability contract — loading a
// mid-file window must touch a small, bounded number of bytes, never the
// prefix records (pinned through TraceBinReadStats).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/platform.hpp"
#include "core/workloads.hpp"
#include "sweep/analyze.hpp"
#include "traffic/stimulus.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_bin.hpp"

namespace {

using namespace ahbp;
using namespace ahbp::traffic;

constexpr std::size_t kHeaderBytes = 40;

/// Bitwise equality of two scripts (everything the formats carry).
void expect_script_equal(const Script& a, const Script& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string at = what + " item " + std::to_string(i);
    EXPECT_EQ(a[i].gap, b[i].gap) << at;
    EXPECT_EQ(a[i].txn.id, b[i].txn.id) << at;
    EXPECT_EQ(a[i].txn.master, b[i].txn.master) << at;
    EXPECT_EQ(a[i].txn.dir, b[i].txn.dir) << at;
    EXPECT_EQ(a[i].txn.addr, b[i].txn.addr) << at;
    EXPECT_EQ(a[i].txn.size, b[i].txn.size) << at;
    EXPECT_EQ(a[i].txn.burst, b[i].txn.burst) << at;
    EXPECT_EQ(a[i].txn.beats, b[i].txn.beats) << at;
    EXPECT_EQ(a[i].txn.locked, b[i].txn.locked) << at;
    if (a[i].txn.dir == ahb::Dir::kWrite) {
      EXPECT_EQ(a[i].txn.data, b[i].txn.data) << at;
    }
  }
}

Script pattern_script(PatternKind kind, unsigned items = 40,
                      unsigned beat_bytes = 4, ahb::MasterId master = 2) {
  PatternConfig cfg;
  cfg.kind = kind;
  cfg.items = items;
  cfg.seed = 77;
  cfg.base = 0x4000;
  cfg.span = 1 << 16;
  cfg.beat_bytes = beat_bytes;
  return make_script(cfg, master);
}

class TraceBinRoundtrip : public ::testing::TestWithParam<PatternKind> {};

TEST_P(TraceBinRoundtrip, SaveLoadPreservesEverything) {
  const Script original = pattern_script(GetParam());
  const std::string bytes = trace_bin_bytes(original);
  ASSERT_TRUE(is_trace_bin(bytes));

  const Script loaded = load_trace_bin(bytes, 2);
  expect_script_equal(loaded, original, "bin round-trip");

  // Byte-determinism: save(load(save(s))) is the identity on the image.
  EXPECT_EQ(trace_bin_bytes(loaded), bytes);

  // And the header describes exactly what was written.
  const TraceBinInfo info = trace_bin_info(bytes);
  EXPECT_EQ(info.version, kTraceBinVersion);
  EXPECT_EQ(info.records, original.size());
  EXPECT_TRUE(info.indexed());
  EXPECT_EQ(info.index_offset, kHeaderBytes + info.payload_bytes);
  EXPECT_EQ(info.file_bytes,
            kHeaderBytes + info.payload_bytes + 8 * info.records);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, TraceBinRoundtrip,
                         ::testing::Values(PatternKind::kCpu,
                                           PatternKind::kDma,
                                           PatternKind::kRtStream,
                                           PatternKind::kRandom));

TEST(TraceBin, CrossFormatEquivalence) {
  // The two formats are siblings behind one Script: loading a text save
  // and loading a binary save of the same script must agree bit-for-bit —
  // including 8-byte beats, whose data words exercise the full u64 field.
  for (const unsigned beat_bytes : {4u, 8u}) {
    const Script original =
        pattern_script(PatternKind::kDma, 24, beat_bytes, 1);
    std::stringstream text;
    save_trace(text, original);
    const Script from_text = load_trace(text, 1);
    const Script from_bin = load_trace_bin(trace_bin_bytes(original), 1);
    expect_script_equal(from_bin, from_text,
                        "beat_bytes " + std::to_string(beat_bytes));
  }
}

TEST(TraceBin, LockedAndGapFieldsRoundTrip) {
  // The binary format carries HLOCK (flags bit 0) and full-width gaps —
  // build a script by hand to pin both.
  Script s(2);
  s[0].gap = 0;
  s[0].txn = {.id = 1, .master = 3, .dir = ahb::Dir::kWrite, .addr = 0x1000,
              .size = ahb::Size::kWord, .burst = ahb::Burst::kIncr4,
              .beats = 4, .locked = true,
              .data = {0x11, 0x22, 0x33, 0xFFFFFFFFFFFFFFFFull}};
  s[1].gap = ~std::uint64_t{0} >> 1;
  s[1].txn.id = 2;
  s[1].txn.master = 3;
  s[1].txn.addr = 0x2000;
  const Script loaded = load_trace_bin(trace_bin_bytes(s), 3);
  expect_script_equal(loaded, s, "locked/gap");
  EXPECT_TRUE(loaded[0].txn.locked);
  EXPECT_EQ(loaded[1].gap, ~std::uint64_t{0} >> 1);
}

TEST(TraceBin, EmptyScriptRoundTrips) {
  const std::string bytes = trace_bin_bytes(Script{});
  EXPECT_EQ(bytes.size(), kHeaderBytes);
  EXPECT_TRUE(is_trace_bin(bytes));
  const TraceBinInfo info = trace_bin_info(bytes);
  EXPECT_EQ(info.records, 0u);
  EXPECT_EQ(info.payload_bytes, 0u);
  EXPECT_TRUE(load_trace_bin(bytes, 0).empty());
  EXPECT_TRUE(load_trace_bin_window(bytes, 0, 0, 5).empty());
}

TEST(TraceBin, MagicDetection) {
  EXPECT_FALSE(is_trace_bin(""));
  EXPECT_FALSE(is_trace_bin("# ahbp trace v1: gap dir addr ..."));
  EXPECT_FALSE(is_trace_bin("0 R 100 4 INCR4 4\n"));
  EXPECT_FALSE(is_trace_bin(std::string_view("\x89", 1)));  // short prefix
  EXPECT_TRUE(is_trace_bin(trace_bin_bytes(Script{})));
  // A 7-bit-stripped copy (the PNG-style high-bit trick) fails the magic.
  std::string stripped = trace_bin_bytes(Script{});
  stripped[0] = static_cast<char>(stripped[0] & 0x7F);
  EXPECT_FALSE(is_trace_bin(stripped));
}

TEST(TraceBin, ExpandStimulusAutoDetectsFormat) {
  // The same StimulusSpec slot accepts either format; expansion keys off
  // the magic, so binary bytes in trace_text (a checkpoint embedding, a
  // resolved binary file) load without being told.
  const Script original = pattern_script(PatternKind::kRandom, 20, 4, 1);

  StimulusSpec spec;
  spec.source = StimulusSource::kTrace;
  spec.trace_text = trace_bin_bytes(original);
  spec.trace_loaded = true;
  expect_script_equal(expand_stimulus(spec, 1, 4), original, "from text slot");

  // And from a file on disk through resolve().
  const std::string path = "trace_bin_autodetect.trace";
  {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os);
    save_trace_bin(os, original);
  }
  StimulusSpec file_spec;
  file_spec.source = StimulusSource::kTrace;
  file_spec.trace_path = path;
  expect_script_equal(expand_stimulus(file_spec, 1, 4), original,
                      "from file");
  std::remove(path.c_str());
}

// ------------------------------------------------------------ malformed --

TEST(TraceBin, TruncatedImagesRejected) {
  const std::string bytes = trace_bin_bytes(pattern_script(PatternKind::kCpu));
  // Every proper prefix of the image must be rejected, never mis-loaded.
  for (const std::size_t len : {0ul, 7ul, 8ul, 16ul, 39ul, kHeaderBytes,
                                kHeaderBytes + 10, bytes.size() - 1}) {
    const std::string_view prefix(bytes.data(), len);
    EXPECT_THROW(load_trace_bin(prefix, 0), std::runtime_error) << len;
  }
}

TEST(TraceBin, BadHeaderFieldsRejected) {
  const std::string good = trace_bin_bytes(pattern_script(PatternKind::kCpu));

  std::string bad_magic = good;
  bad_magic[1] = 'X';
  EXPECT_THROW(trace_bin_info(bad_magic), std::runtime_error);

  std::string bad_version = good;
  bad_version[8] = 2;  // u32 version at offset 8
  try {
    trace_bin_info(bad_version);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos)
        << e.what();
  }

  std::string bad_reserved = good;
  bad_reserved[12] = 1;  // u32 reserved at offset 12
  EXPECT_THROW(trace_bin_info(bad_reserved), std::runtime_error);

  std::string bad_count = good;
  bad_count[16] = static_cast<char>(0xFF);  // record count at offset 16
  bad_count[17] = static_cast<char>(0xFF);
  EXPECT_THROW(trace_bin_info(bad_count), std::runtime_error);

  std::string bad_index = good;
  bad_index[24] = static_cast<char>(bad_index[24] + 1);  // index offset
  EXPECT_THROW(trace_bin_info(bad_index), std::runtime_error);

  std::string bad_payload = good;
  bad_payload[32] = static_cast<char>(bad_payload[32] + 1);  // payload size
  EXPECT_THROW(trace_bin_info(bad_payload), std::runtime_error);
}

/// A one-record image (read, so the record is exactly 24 bytes at offset
/// 40) for byte-level corruption tests.
std::string one_read_record_image() {
  Script s(1);
  s[0].txn.id = 1;
  s[0].txn.addr = 0x100;
  s[0].txn.burst = ahb::Burst::kIncr4;
  s[0].txn.beats = 4;
  return trace_bin_bytes(s);
}

TEST(TraceBin, CorruptRecordFieldsRejectedWithRecordNumber) {
  struct Case {
    const char* name;
    std::size_t offset;  // within the record (record head starts at 40)
    char value;
  };
  const Case cases[] = {
      {"direction", 16, 2},     // dir must be 0/1
      {"size", 17, 7},          // past ahb::Size::kDword
      {"burst", 18, 9},         // past ahb::Burst::kIncr16
      {"flags", 19, 0x40},      // reserved flag bits
      {"beats-zero", 20, 0},    // beat count 0
      {"alignment", 8, 0x02},   // addr 0x102: misaligned word transfer
  };
  for (const Case& c : cases) {
    std::string image = one_read_record_image();
    image[kHeaderBytes + c.offset] = c.value;
    try {
      load_trace_bin(image, 0);
      FAIL() << c.name;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("record 1"), std::string::npos)
          << c.name << ": " << e.what();
    }
  }
}

TEST(TraceBin, CraftedBeatCountRejectedBeforeAllocation) {
  // beats = 0x40000000 on a write record must error on the ceiling check,
  // not attempt a multi-gigabyte data allocation or a wild read.
  std::string image = one_read_record_image();
  image[kHeaderBytes + 16] = 1;                        // make it a write
  image[kHeaderBytes + 20] = 0;                        // beats u32 LE
  image[kHeaderBytes + 21] = 0;
  image[kHeaderBytes + 22] = 0;
  image[kHeaderBytes + 23] = 0x40;
  try {
    load_trace_bin(image, 0);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("beat count"), std::string::npos)
        << e.what();
  }
}

TEST(TraceBin, PayloadSizeMismatchRejected) {
  // Understate the record count: the whole-file load must notice records
  // ending before the declared payload end (trailing garbage), not
  // silently drop the tail.
  std::string image = trace_bin_bytes(pattern_script(PatternKind::kCpu, 4));
  image[16] = 2;  // record count 4 -> 2 (u64 LE at offset 16)
  // The index length check also sees the shrunken count, so the image
  // stays header-consistent; only the payload walk can catch it.
  EXPECT_THROW(load_trace_bin(image, 0), std::runtime_error);
}

// ------------------------------------------------------------- windows --

TEST(TraceBin, WindowSliceMatchesFullLoad) {
  const Script full = pattern_script(PatternKind::kRandom, 200);
  const std::string bytes = trace_bin_bytes(full);

  const Script window = load_trace_bin_window(bytes, 2, 50, 20);
  ASSERT_EQ(window.size(), 20u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const TrafficItem& want = full[50 + i];
    EXPECT_EQ(window[i].gap, want.gap) << i;
    EXPECT_EQ(window[i].txn.addr, want.txn.addr) << i;
    EXPECT_EQ(window[i].txn.dir, want.txn.dir) << i;
    EXPECT_EQ(window[i].txn.beats, want.txn.beats) << i;
    EXPECT_EQ(window[i].txn.data, want.txn.data) << i;
    // Ids restart at 1: a slice is a standalone script.
    EXPECT_EQ(window[i].txn.id, i + 1) << i;
  }

  // Clamping and out-of-range behavior.
  EXPECT_EQ(load_trace_bin_window(bytes, 2, 190, 100).size(), 10u);
  EXPECT_TRUE(load_trace_bin_window(bytes, 2, 200, 5).empty());
  EXPECT_TRUE(load_trace_bin_window(bytes, 2, 9999, 5).empty());
  EXPECT_TRUE(load_trace_bin_window(bytes, 2, 0, 0).empty());
}

TEST(TraceBin, WindowLoadSeeksInsteadOfParsingPrefix) {
  // The acceptance contract: slicing a mid-file window must not read the
  // prefix records.  20k write-heavy records put ~3MB ahead of the window;
  // the indexed load may touch only the header, one index entry, and the
  // window's own records.
  const Script big = pattern_script(PatternKind::kDma, 20000);
  const std::string bytes = trace_bin_bytes(big);
  const TraceBinInfo info = trace_bin_info(bytes);
  ASSERT_GT(info.payload_bytes, 1000000u);

  TraceBinReadStats window_stats;
  const Script window =
      load_trace_bin_window(bytes, 2, 10000, 10, &window_stats);
  ASSERT_EQ(window.size(), 10u);
  EXPECT_EQ(window_stats.records_decoded, 10u);

  // Generous ceiling: header + index entry + 10 maximal records is well
  // under 4KB; the prefix alone is over a megabyte.
  EXPECT_LT(window_stats.bytes_examined, 4096u);
  EXPECT_LT(window_stats.bytes_examined, info.payload_bytes / 100);

  // A full load by contrast must examine at least the whole payload.
  TraceBinReadStats full_stats;
  const Script full = load_trace_bin(bytes, 2, &full_stats);
  EXPECT_EQ(full_stats.records_decoded, big.size());
  EXPECT_GE(full_stats.bytes_examined, info.payload_bytes);
  expect_script_equal(full, big, "full load");
}

TEST(TraceBin, IndexlessImageStillLoadsAndSkipsCheaply) {
  // Strip the trailing index (truncate it, zero the header's offset): the
  // full load is unchanged and the window load falls back to record-header
  // hops — still never decoding prefix payloads.
  const Script big = pattern_script(PatternKind::kDma, 5000);
  std::string image = trace_bin_bytes(big);
  const TraceBinInfo info = trace_bin_info(image);
  image.resize(static_cast<std::size_t>(info.index_offset));
  for (std::size_t i = 24; i < 32; ++i) {
    image[i] = 0;  // index_offset = 0: no index
  }
  EXPECT_FALSE(trace_bin_info(image).indexed());

  expect_script_equal(load_trace_bin(image, 2), big, "index-less full");

  TraceBinReadStats stats;
  const Script window = load_trace_bin_window(image, 2, 2500, 10, &stats);
  ASSERT_EQ(window.size(), 10u);
  EXPECT_EQ(window[0].txn.addr, big[2500].txn.addr);
  // The skip path reads 5 bytes per prefix record (dir + beats), so the
  // write payloads — the bulk of the image — stay untouched.
  EXPECT_LT(stats.bytes_examined, info.payload_bytes / 8);
}

TEST(TraceBin, LintPreValidatesBinaryTraces) {
  // `ahbp_sim lint` expands stimulus exactly as the models do, so a
  // binary trace gets the same pre-validation as a text one: a valid
  // image lints clean, a corrupted record is an error naming the master
  // and the record before any cycles are spent.
  core::PlatformConfig cfg = core::default_platform(2, 3, 30);
  const auto scripts = core::expand_stimulus(cfg);
  traffic::StimulusSpec& spec = cfg.masters[1].traffic;
  spec.source = StimulusSource::kTrace;
  spec.trace_text = trace_bin_bytes(scripts[1]);
  spec.trace_loaded = true;
  EXPECT_TRUE(sweep::lint_config(cfg).ok());

  spec.trace_text[kHeaderBytes + 16] = 2;  // record 1 direction -> invalid
  const sweep::LintReport report = sweep::lint_config(cfg);
  ASSERT_GT(report.errors(), 0u);
  bool found = false;
  for (const auto& f : report.findings) {
    if (f.severity == sweep::LintSeverity::kError &&
        f.message.find("binary trace record 1") != std::string::npos &&
        f.message.find("master 1") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// -------------------------------------------------------------- mapping --

TEST(TraceBin, MappedTraceReadsBackExactBytes) {
  const std::string path = "trace_bin_mapped.trace";
  const std::string bytes = trace_bin_bytes(pattern_script(PatternKind::kCpu));
  {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    MappedTrace map(path);
    EXPECT_EQ(map.bytes(), bytes);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(map.zero_copy());
#endif
    expect_script_equal(load_trace_bin(map.bytes(), 2),
                        pattern_script(PatternKind::kCpu), "mapped load");
  }
  std::remove(path.c_str());
}

TEST(TraceBin, MappedTraceEmptyFileFallsBack) {
  const std::string path = "trace_bin_mapped_empty.trace";
  { std::ofstream os(path, std::ios::binary); ASSERT_TRUE(os); }
  {
    MappedTrace map(path);
    EXPECT_FALSE(map.zero_copy());  // nothing to map
    EXPECT_TRUE(map.bytes().empty());
  }
  std::remove(path.c_str());
}

TEST(TraceBin, MappedTraceRejectsMissingFileAndDirectory) {
  EXPECT_THROW(MappedTrace("definitely/not/here.trace"), std::runtime_error);
  const std::string dir = "trace_bin_mapped_dir";
  std::filesystem::create_directory(dir);
  try {
    MappedTrace map(dir);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("directory"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(dir);
}

}  // namespace
