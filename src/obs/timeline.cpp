#include "obs/timeline.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace ahbp::obs {

unsigned Timeline::add_process(std::string name) {
  processes_.push_back(std::move(name));
  return static_cast<unsigned>(processes_.size() - 1);
}

unsigned Timeline::add_track(unsigned pid, std::string name) {
  tracks_.push_back(Track{pid, std::move(name), {}});
  return static_cast<unsigned>(tracks_.size() - 1);
}

void Timeline::begin(unsigned track, sim::Cycle ts, std::string name) {
  tracks_[track].open.push_back(name);
  events_.push_back(Event{'B', track, ts, std::move(name), 0});
}

void Timeline::end(unsigned track, sim::Cycle ts) {
  auto& open = tracks_[track].open;
  if (open.empty()) {
    // No matching begin on record (e.g. the span predates a checkpoint
    // restore): dropping the end keeps the stream balanced.
    return;
  }
  open.pop_back();
  events_.push_back(Event{'E', track, ts, {}, 0});
}

void Timeline::instant(unsigned track, sim::Cycle ts, std::string name) {
  events_.push_back(Event{'i', track, ts, std::move(name), 0});
}

void Timeline::counter(unsigned track, sim::Cycle ts, std::string name,
                       std::uint64_t value) {
  events_.push_back(Event{'C', track, ts, std::move(name), value});
}

void Timeline::finalize(sim::Cycle ts) {
  for (unsigned t = 0; t < tracks_.size(); ++t) {
    while (!tracks_[t].open.empty()) {
      end(t, ts);
    }
  }
}

void Timeline::write(std::ostream& os) const {
  // Stable sort: timestamps become monotone while same-cycle events keep
  // emission order (so a B at cycle N still precedes its zero-length E).
  std::vector<const Event*> sorted;
  sorted.reserve(events_.size());
  for (const auto& e : events_) {
    sorted.push_back(&e);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });

  JsonWriter j(os);
  j.begin_object();
  j.key("traceEvents");
  j.begin_array();

  // Metadata first: process and thread names plus an explicit sort index
  // so tracks display in creation order.
  for (unsigned p = 0; p < processes_.size(); ++p) {
    j.begin_object()
        .member("ph", "M")
        .member("name", "process_name")
        .member("pid", p + 1)
        .key("args")
        .begin_object()
        .member("name", processes_[p])
        .end_object()
        .end_object();
  }
  for (unsigned t = 0; t < tracks_.size(); ++t) {
    j.begin_object()
        .member("ph", "M")
        .member("name", "thread_name")
        .member("pid", tracks_[t].pid + 1)
        .member("tid", t + 1)
        .key("args")
        .begin_object()
        .member("name", tracks_[t].name)
        .end_object()
        .end_object();
    j.begin_object()
        .member("ph", "M")
        .member("name", "thread_sort_index")
        .member("pid", tracks_[t].pid + 1)
        .member("tid", t + 1)
        .key("args")
        .begin_object()
        .member("sort_index", t)
        .end_object()
        .end_object();
  }

  for (const Event* e : sorted) {
    const Track& tr = tracks_[e->track];
    j.begin_object();
    j.member("ph", std::string_view(&e->ph, 1))
        .member("pid", tr.pid + 1)
        .member("tid", e->track + 1)
        .member("ts", static_cast<std::uint64_t>(e->ts));
    switch (e->ph) {
      case 'B':
        j.member("name", e->name);
        break;
      case 'E':
        break;
      case 'i':
        j.member("name", e->name).member("s", "t");
        break;
      case 'C':
        j.member("name", e->name)
            .key("args")
            .begin_object()
            .member("value", e->value)
            .end_object();
        break;
      default:
        break;
    }
    j.end_object();
  }

  j.end_array();
  j.member("displayTimeUnit", "ns");
  j.end_object();
  os << '\n';
}

}  // namespace ahbp::obs
