#include "core/platform.hpp"

#include <chrono>
#include <memory>

#include "assertions/assert.hpp"
#include "assertions/violation.hpp"
#include "rtl/fabric.hpp"
#include "sim/cycle_kernel.hpp"
#include "tlm/bus.hpp"
#include "tlm/ddrc.hpp"
#include "tlm/master.hpp"

namespace ahbp::core {

std::vector<ddr::ChannelConfig> ddr_channel_configs(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(cfg.interleave.valid(),
                  "ddr.channels must be 1/2/4/8 with a power-of-two"
                  " interleave stripe >= 8 bytes");
  return ddr::resolve_channels(cfg.timing, cfg.geom, cfg.interleave,
                               cfg.ddr_channels);
}

std::vector<traffic::Script> make_scripts(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(cfg.bus.data_width_bytes),
                  "bus.data_width_bytes must be 1, 2, 4 or 8");
  std::vector<traffic::Script> scripts;
  scripts.reserve(cfg.masters.size());
  for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
    // The §3.7 bus-width knob reaches the stimulus here: patterns keep the
    // bytes per transfer invariant and emit beats of the configured width,
    // so both models see the same wide-beat workload.
    traffic::PatternConfig pat = cfg.masters[m].traffic;
    pat.beat_bytes = cfg.bus.data_width_bytes;
    scripts.push_back(
        traffic::make_script(pat, static_cast<ahb::MasterId>(m)));
  }
  return scripts;
}

SimResult run_tlm(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(!cfg.masters.empty(), "platform needs at least one master");
  const unsigned n = static_cast<unsigned>(cfg.masters.size());

  sim::CycleKernel kernel;
  ahb::QosRegisterFile qos(n);
  for (unsigned m = 0; m < n; ++m) {
    qos.program(static_cast<ahb::MasterId>(m), cfg.masters[m].qos);
  }
  chk::ViolationLog log;
  tlm::TlmDdrc ddrc(ddr_channel_configs(cfg), cfg.interleave, cfg.ddr_base);
  tlm::AhbPlusBus bus(cfg.bus, qos, ddrc, n,
                      cfg.enable_checkers ? &log : nullptr);
  kernel.add(bus);

  auto scripts = make_scripts(cfg);
  std::vector<std::unique_ptr<tlm::TlmMaster>> masters;
  sim::Cycle last_completion = 0;
  for (unsigned m = 0; m < n; ++m) {
    masters.push_back(std::make_unique<tlm::TlmMaster>(
        static_cast<ahb::MasterId>(m), bus, std::move(scripts[m])));
    masters[m]->on_complete = [&last_completion, &kernel](const ahb::Transaction&) {
      last_completion = kernel.now();
    };
    kernel.add(*masters[m]);
  }

  auto all_done = [&] {
    for (const auto& m : masters) {
      if (!m->finished()) {
        return false;
      }
    }
    return bus.quiescent();
  };

  const auto t0 = std::chrono::steady_clock::now();
  kernel.run_until(all_done, cfg.max_cycles);
  const auto t1 = std::chrono::steady_clock::now();

  SimResult r;
  r.model = "tlm";
  r.finished = all_done();
  r.cycles = last_completion;
  r.ran_cycles = kernel.now();
  for (const auto& m : masters) {
    r.completed += m->completed();
  }
  r.profile.masters = bus.master_profiles();
  r.profile.bus = bus.bus_profile();
  r.profile.bus.grants = bus.arbiter().grants();
  r.profile.write_buffer = bus.write_buffer().profile();
  r.profile.ddr.commands = ddrc.channels().command_counters();
  r.profile.ddr.hits = ddrc.channels().hit_stats();
  r.profile.total_cycles = last_completion;
  r.profile.completed_txns = r.completed;
  r.protocol_errors = log.errors();
  r.qos_warnings = log.warnings();
  r.first_violations = log.to_string();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.kernel_activity = kernel.evaluations();
  return r;
}

SimResult run_rtl(const PlatformConfig& cfg, std::ostream* vcd_out) {
  AHBP_ASSERT_MSG(!cfg.masters.empty(), "platform needs at least one master");

  rtl::RtlFabricConfig fc;
  fc.bus = cfg.bus;
  fc.timing = cfg.timing;
  fc.geom = cfg.geom;
  fc.interleave = cfg.interleave;
  fc.ddr_channels = cfg.ddr_channels;
  fc.ddr_base = cfg.ddr_base;
  fc.enable_checkers = cfg.enable_checkers;
  for (const MasterSpec& m : cfg.masters) {
    fc.qos.push_back(m.qos);
  }

  rtl::RtlFabric fabric(fc, make_scripts(cfg));
  if (vcd_out != nullptr) {
    fabric.enable_vcd(*vcd_out);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const sim::Cycle ran = fabric.run(cfg.max_cycles);
  const auto t1 = std::chrono::steady_clock::now();

  SimResult r;
  r.model = "rtl";
  r.finished = fabric.finished();
  r.cycles = fabric.last_completion();
  r.ran_cycles = ran;
  r.completed = fabric.completed_txns();
  r.profile = fabric.profile();
  r.protocol_errors = fabric.violations().errors();
  r.qos_warnings = fabric.violations().warnings();
  r.first_violations = fabric.violations().to_string();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.kernel_activity = fabric.kernel().stats().deltas;
  return r;
}

double kcycles_per_sec(const SimResult& r) {
  if (r.wall_seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(r.ran_cycles) / r.wall_seconds / 1000.0;
}

}  // namespace ahbp::core
