#pragma once

#include <cstddef>
#include <functional>
#include <string_view>

/// \file lexer.hpp
/// The one line-lexer behind every text front end of the scenario layer.
///
/// Scenario files and sweep files share a surface syntax — `# comments`,
/// `[section]` headers, `key = value` lines — and must never drift apart
/// lexically.  This lexer owns that surface; the parsers on top of it only
/// decide which sections and keys they accept.

namespace ahbp::scenario::lex {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// One meaningful (non-blank, non-comment) line.
struct Line {
  enum class Kind : unsigned char {
    kSection,   ///< `[name]` — `section` holds the trimmed inner text
    kKeyValue,  ///< `key = value` — `key`/`value` hold the trimmed halves
  };

  Kind kind = Kind::kKeyValue;
  std::size_t number = 0;    ///< 1-based line number in the input
  std::string_view section;  ///< kSection only
  std::string_view key;      ///< kKeyValue only (never empty)
  std::string_view value;    ///< kKeyValue only (may be empty)
  std::string_view raw;      ///< the whole original line, comment included
};

/// Walk `text` line by line, invoking `cb` for each meaningful line.
/// Blank and comment-only lines are skipped (but still counted).  Throws
/// ScenarioError (with the line number) on a malformed section header, a
/// line with no '=', or an empty key.
void for_each_line(std::string_view text,
                   const std::function<void(const Line&)>& cb);

/// If `section_inner` names a master section ("master 0", "master *"),
/// return true and set `index_text` to the trimmed index part ("0", "*").
bool master_section(std::string_view section_inner,
                    std::string_view& index_text);

/// If `section_inner` names a DDR channel section ("channel 0"), return
/// true and set `index_text` to the trimmed index part ("0").
bool channel_section(std::string_view section_inner,
                     std::string_view& index_text);

}  // namespace ahbp::scenario::lex
