#pragma once

#include <deque>
#include <optional>

#include "ahb/config.hpp"
#include "ahb/transaction.hpp"
#include "sim/time.hpp"
#include "stats/profiles.hpp"

/// \file write_buffer.hpp
/// The AHB+ write buffer (§3.3): "stores the information of write
/// transactions when a master cannot get a bus grant at the right time.
/// The write buffer behaves as another master when it is occupied by
/// waiting transactions."
///
/// Semantics implemented identically in both models:
///  * a write that loses arbitration is absorbed if space remains; the
///    issuing master observes completion immediately (posted write);
///  * while occupied at or above the drain watermark — or when flagged
///    urgent — the buffer raises its own bus request (pseudo-master);
///  * a read overlapping any buffered write's address range flags the
///    buffer urgent, and the arbiter holds that read back until the
///    overlapping writes drain (strict read-after-write ordering).

namespace ahbp::tlm {

class WriteBuffer {
 public:
  WriteBuffer(unsigned depth, unsigned watermark, bool enabled)
      : depth_(enabled ? depth : 0), watermark_(watermark == 0 ? 1 : watermark),
        enabled_(enabled && depth > 0) {}

  bool enabled() const noexcept { return enabled_; }
  unsigned depth() const noexcept { return depth_; }
  unsigned occupancy() const noexcept {
    return static_cast<unsigned>(fifo_.size());
  }
  bool empty() const noexcept { return fifo_.empty(); }
  bool full() const noexcept { return fifo_.size() >= depth_; }

  /// Absorb a write transaction.  Returns false when disabled or full.
  bool absorb(const ahb::Transaction& t, sim::Cycle now);

  /// Pseudo-master request line: occupied at/above watermark, or urgent.
  bool requesting() const noexcept {
    return enabled_ && (occupancy() >= watermark_ || (urgent_ && !empty()));
  }

  /// Urgency: full, or a read hazard is pending (escalates arbitration).
  bool urgent() const noexcept { return enabled_ && (full() || urgent_) && !empty(); }

  /// Next transaction to drain (FIFO order).  Pre: !empty().
  const ahb::Transaction& front() const;

  /// FIFO entry `i` from the front (pre: i < occupancy()).  Used when the
  /// front is already draining and the next grant concerns entry 1.
  const ahb::Transaction& peek(unsigned i) const;

  /// Remove the front after its drain transfer completes.
  ahb::Transaction pop_front(sim::Cycle now);

  /// Does any buffered write overlap [lo, hi)?
  bool overlaps(ahb::Addr lo, ahb::Addr hi) const noexcept;

  /// Flag a read-after-write hazard: buffer drains with urgency until the
  /// overlap clears (checked by the arbiter each cycle).
  void flag_hazard() noexcept { urgent_ = true; }

  /// Called each cycle after arbitration so a cleared hazard de-escalates.
  void clear_hazard_if_unneeded(bool still_hazard) noexcept {
    if (!still_hazard && !full()) {
      urgent_ = false;
    }
  }

  /// Per-cycle occupancy sampling for the profile.
  void sample() { profile_.occupancy.add(occupancy()); }

  /// Bulk occupancy sampling: equivalent to n calls to sample() over a
  /// stretch where the occupancy cannot change (skipped idle cycles).
  void sample_n(std::uint64_t n) { profile_.occupancy.add_n(occupancy(), n); }

  void count_bypass() noexcept { ++profile_.bypassed; }
  void count_full_stall() noexcept { ++profile_.full_stalls; }
  void count_forward() noexcept { ++profile_.forwards; }

  const stats::WriteBufferProfile& profile() const noexcept { return profile_; }

  /// Snapshot FIFO contents, urgency flag and profile.  Capacity/watermark
  /// are configuration: a snapshot restores into whatever depth the target
  /// platform was built with (occupancy above the new depth simply drains).
  void save_state(state::StateWriter& w) const;
  void restore_state(state::StateReader& r);

 private:
  unsigned depth_;
  unsigned watermark_;
  bool enabled_;
  bool urgent_ = false;
  std::deque<ahb::Transaction> fifo_;
  stats::WriteBufferProfile profile_;
};

}  // namespace ahbp::tlm
