#include "core/platform.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "assertions/assert.hpp"
#include "core/checkpoint.hpp"
#include "obs/json.hpp"

namespace ahbp::core {

std::vector<ddr::ChannelConfig> ddr_channel_configs(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(cfg.interleave.valid(),
                  "ddr.channels must be 1/2/4/8 with a power-of-two"
                  " interleave stripe >= 8 bytes");
  return ddr::resolve_channels(cfg.timing, cfg.geom, cfg.interleave,
                               cfg.ddr_channels);
}

std::uint64_t ddr_aperture_bytes(const PlatformConfig& cfg) {
  const auto channels = ddr_channel_configs(cfg);
  std::uint64_t min_capacity = channels.front().geom.capacity();
  for (const ddr::ChannelConfig& ch : channels) {
    min_capacity = std::min(min_capacity, ch.geom.capacity());
  }
  return min_capacity * cfg.interleave.channels;
}

void resolve_stimulus(PlatformConfig& cfg) {
  for (MasterSpec& m : cfg.masters) {
    traffic::resolve(m.traffic);
  }
}

std::vector<traffic::Script> expand_stimulus(const PlatformConfig& cfg) {
  AHBP_ASSERT_MSG(ahb::valid_beat_bytes(cfg.bus.data_width_bytes),
                  "bus.data_width_bytes must be 1, 2, 4 or 8");
  std::vector<traffic::Script> scripts;
  scripts.reserve(cfg.masters.size());
  for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
    scripts.push_back(traffic::expand_stimulus(
        cfg.masters[m].traffic, static_cast<ahb::MasterId>(m),
        cfg.bus.data_width_bytes));
  }
  // Synthetic windows are aperture-checked at scenario::validate; traces
  // carry arbitrary recorded addresses, so police them here where the
  // resolved channel geometry is known — a clear workload error beats a
  // decode assertion deep inside the DDR model.
  bool any_trace = false;
  for (const MasterSpec& m : cfg.masters) {
    any_trace = any_trace || m.traffic.is_trace();
  }
  if (any_trace) {
    const std::uint64_t aperture = ddr_aperture_bytes(cfg);
    for (std::size_t m = 0; m < cfg.masters.size(); ++m) {
      if (!cfg.masters[m].traffic.is_trace()) {
        continue;
      }
      for (const traffic::TrafficItem& item : scripts[m]) {
        const ahb::Transaction& t = item.txn;
        if (t.addr < cfg.ddr_base || t.addr - cfg.ddr_base > aperture ||
            t.bytes() > aperture - (t.addr - cfg.ddr_base)) {
          char addr_hex[32];
          std::snprintf(addr_hex, sizeof addr_hex, "0x%llx",
                        static_cast<unsigned long long>(t.addr));
          throw std::runtime_error(
              "master " + std::to_string(m) + " trace transaction " +
              std::to_string(t.id) + " at " + addr_hex +
              " falls outside the DDR aperture");
        }
      }
    }
  }
  return scripts;
}

SimResult run_tlm(const PlatformConfig& cfg) {
  Platform p(cfg, ModelKind::kTlm);
  p.run_to_completion();
  return p.result();
}

SimResult run_rtl(const PlatformConfig& cfg, std::ostream* vcd_out) {
  Platform p(cfg, ModelKind::kRtl);
  if (vcd_out != nullptr) {
    p.enable_vcd(*vcd_out);
  }
  p.run_to_completion();
  return p.result();
}

double kcycles_per_sec(const SimResult& r) {
  if (r.wall_seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(r.ran_cycles) / r.wall_seconds / 1000.0;
}

namespace {

void summary_json(obs::JsonWriter& j, const stats::Summary& s) {
  j.begin_object()
      .member("count", s.count())
      .member("min", s.min())
      .member("max", s.max())
      .member("mean", s.mean())
      .end_object();
}

void histogram_json(obs::JsonWriter& j, const stats::Log2Histogram& h) {
  const stats::Summary s = h.summary();
  j.begin_object()
      .member("count", s.count())
      .member("min", s.min())
      .member("max", s.max())
      .member("mean", s.mean())
      .member("p95_upper", h.percentile_upper(95))
      .end_object();
}

}  // namespace

void write_stats_json(std::ostream& os, const SimResult& r) {
  obs::JsonWriter j(os);
  j.begin_object()
      .member("model", r.model)
      .member("finished", r.finished)
      .member("cycles", static_cast<std::uint64_t>(r.cycles))
      .member("ran_cycles", static_cast<std::uint64_t>(r.ran_cycles))
      .member("completed", r.completed)
      .member("protocol_errors", static_cast<std::uint64_t>(r.protocol_errors))
      .member("qos_warnings", static_cast<std::uint64_t>(r.qos_warnings))
      .member("wall_seconds", r.wall_seconds)
      .member("kcycles_per_sec", kcycles_per_sec(r))
      .member("kernel_activity", r.kernel_activity);

  const stats::RunProfile& p = r.profile;
  j.key("bus")
      .begin_object()
      .member("utilization", p.bus.utilization())
      .member("contention", p.bus.contention())
      .member("throughput", p.bus.throughput())
      .member("grants", p.bus.grants)
      .member("handovers", p.bus.handovers)
      .member("bytes", p.bus.bytes)
      .end_object();

  j.key("write_buffer")
      .begin_object()
      .member("absorbed", p.write_buffer.absorbed)
      .member("drained", p.write_buffer.drained)
      .member("bypassed", p.write_buffer.bypassed)
      .member("full_stalls", p.write_buffer.full_stalls)
      .member("forwards", p.write_buffer.forwards)
      .key("occupancy");
  summary_json(j, p.write_buffer.occupancy);
  j.end_object();

  j.key("ddr")
      .begin_object()
      .member("activates", p.ddr.commands.activates)
      .member("reads", p.ddr.commands.reads)
      .member("writes", p.ddr.commands.writes)
      .member("precharges", p.ddr.commands.precharges)
      .member("refreshes", p.ddr.commands.refreshes)
      .member("row_hit_rate", p.ddr.row_hit_rate())
      .end_object();

  j.key("masters").begin_array();
  for (const stats::MasterProfile& m : p.masters) {
    j.begin_object()
        .member("name", m.name)
        .member("reads", m.reads)
        .member("writes", m.writes)
        .member("bytes_read", m.bytes_read)
        .member("bytes_written", m.bytes_written)
        .member("buffered_writes", m.buffered_writes)
        .member("qos_misses", m.qos_misses);
    j.key("grant_wait");
    histogram_json(j, m.grant_wait);
    j.key("latency");
    histogram_json(j, m.latency);
    j.key("stalls").begin_object();
    for (unsigned c = 0; c < obs::kStallClassCount; ++c) {
      j.member(obs::to_string(static_cast<obs::StallClass>(c)),
               m.stalls.cycles[c]);
    }
    j.member("total", m.stalls.total()).end_object();
    j.end_object();
  }
  j.end_array();

  j.key("violations").begin_object();
  for (const auto& [rule, count] : p.violation_rules) {
    j.member(rule, count);
  }
  j.end_object();

  j.end_object();
}

}  // namespace ahbp::core
