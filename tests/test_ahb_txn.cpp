// Transaction descriptor invariants (the §3.5 model-debug family's input
// validation) and derived metrics.

#include <gtest/gtest.h>

#include "ahb/transaction.hpp"

namespace {

using namespace ahbp::ahb;

Transaction valid_read() {
  Transaction t;
  t.id = 1;
  t.master = 0;
  t.dir = Dir::kRead;
  t.addr = 0x100;
  t.size = Size::kWord;
  t.burst = Burst::kIncr4;
  t.beats = 4;
  return t;
}

TEST(TxnValid, WellFormedRead) {
  EXPECT_TRUE(structurally_valid(valid_read()));
}

TEST(TxnValid, ZeroBeatsRejected) {
  auto t = valid_read();
  t.beats = 0;
  EXPECT_FALSE(structurally_valid(t));
}

TEST(TxnValid, MisalignedAddressRejected) {
  auto t = valid_read();
  t.addr = 0x102;  // word transfer at halfword address
  EXPECT_FALSE(structurally_valid(t));
}

TEST(TxnValid, HalfwordAlignmentSufficesForHalf) {
  auto t = valid_read();
  t.size = Size::kHalf;
  t.addr = 0x102;
  EXPECT_TRUE(structurally_valid(t));
}

TEST(TxnValid, FixedBurstBeatMismatchRejected) {
  auto t = valid_read();
  t.beats = 5;  // INCR4 must carry exactly 4
  EXPECT_FALSE(structurally_valid(t));
}

TEST(TxnValid, UndefinedIncrAnyLength) {
  auto t = valid_read();
  t.burst = Burst::kIncr;
  t.beats = 11;
  EXPECT_TRUE(structurally_valid(t));
}

TEST(TxnValid, IncrCrossing1KbRejected) {
  auto t = valid_read();
  t.burst = Burst::kIncr;
  t.addr = 0x3FC;
  t.beats = 3;  // 0x3FC, 0x400 crosses
  EXPECT_FALSE(structurally_valid(t));
}

TEST(TxnValid, WriteNeedsFullPayload) {
  auto t = valid_read();
  t.dir = Dir::kWrite;
  EXPECT_FALSE(structurally_valid(t));  // no data
  t.data.assign(3, 0);
  EXPECT_FALSE(structurally_valid(t));  // short payload
  t.data.assign(4, 0);
  EXPECT_TRUE(structurally_valid(t));
}

TEST(TxnMetrics, BytesCountsBeatsTimesSize) {
  auto t = valid_read();
  EXPECT_EQ(t.bytes(), 16u);
  t.size = Size::kByte;
  EXPECT_EQ(t.bytes(), 4u);
  t.burst = Burst::kIncr16;
  t.beats = 16;
  t.size = Size::kDword;
  EXPECT_EQ(t.bytes(), 128u);
}

TEST(TxnMetrics, LatencyAndWait) {
  auto t = valid_read();
  t.issued_at = 100;
  t.granted_at = 108;
  t.finished_at = 130;
  EXPECT_EQ(t.wait(), 8u);
  EXPECT_EQ(t.latency(), 30u);
}

TEST(TxnValid, WrapBurstAnyAlignedStart) {
  auto t = valid_read();
  t.burst = Burst::kWrap8;
  t.beats = 8;
  t.addr = 0x3F8;  // wrap burst near the 1KB edge is fine
  EXPECT_TRUE(structurally_valid(t));
}

}  // namespace
