#include "core/compare.hpp"

#include <algorithm>
#include <cmath>

namespace ahbp::core {

AccuracyRow compare_models(const Workload& w) {
  const SimResult rtl = run_rtl(w.config);
  const SimResult tlm = run_tlm(w.config);
  AccuracyRow row;
  row.name = w.name;
  row.rtl_cycles = rtl.cycles;
  row.tlm_cycles = tlm.cycles;
  row.both_finished = rtl.finished && tlm.finished;
  row.protocol_errors = rtl.protocol_errors + tlm.protocol_errors;
  if (rtl.cycles != 0) {
    const double diff = static_cast<double>(tlm.cycles) -
                        static_cast<double>(rtl.cycles);
    row.error = std::abs(diff) / static_cast<double>(rtl.cycles);
  }
  return row;
}

AccuracySuite compare_suite(const std::vector<Workload>& workloads) {
  AccuracySuite s;
  double sum = 0.0;
  for (const Workload& w : workloads) {
    s.rows.push_back(compare_models(w));
    sum += s.rows.back().error;
    s.worst_error = std::max(s.worst_error, s.rows.back().error);
  }
  if (!s.rows.empty()) {
    s.average_error = sum / static_cast<double>(s.rows.size());
  }
  return s;
}

}  // namespace ahbp::core
