#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtl/signals.hpp"
#include "sim/event_kernel.hpp"

/// \file bitlevel.hpp
/// Bit-true datapath layer of the reference model.
///
/// "Pin-accurate RTL" in the paper's sense is bit-true: HADDR[31:0],
/// HWDATA[31:0] and HRDATA[31:0] are 32 individual pins, and the fabric's
/// adders/muxes are gate netlists whose internal nodes all schedule events.
/// This layer blasts the shared buses into per-bit signals and implements
/// each master's sequential-address incrementer as a ripple-carry chain of
/// nibble processes connected by carry wires — so one address change
/// settles through a cascade of delta cycles exactly as an event-driven
/// RTL simulator would evaluate it.
///
/// Every bit carries its true value; disabling the layer changes nothing
/// architecturally (it is the fidelity knob the speed benchmark ablates).

namespace ahbp::rtl {

/// A bundle of single-bit signals shadowing one word-level bus.
class BitBus {
 public:
  BitBus(sim::EventKernel& k, const std::string& base, unsigned width);

  unsigned width() const noexcept { return width_; }
  sim::Signal<bool>& bit(unsigned i) { return *bits_[i]; }

  /// Drive all bits from a word value (each changed bit commits + wakes
  /// its subscribers independently).
  void drive(std::uint64_t v);

  /// Re-assemble the word from the bit signals.
  std::uint64_t sample() const;

 private:
  unsigned width_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> bits_;
};

/// Ripple-carry incrementer over a BitBus: one combinational process per
/// nibble, chained through carry wires.  Computing A+step ripples the
/// carries through up to width/4 delta rounds.
class RippleIncrementer {
 public:
  RippleIncrementer(sim::EventKernel& k, const std::string& base,
                    BitBus& input, sim::Signal<std::uint8_t>& step);

  RippleIncrementer(const RippleIncrementer&) = delete;
  RippleIncrementer& operator=(const RippleIncrementer&) = delete;

  std::uint64_t sum() const { return sum_->sample(); }
  std::size_t signal_count() const noexcept { return signal_count_; }

 private:
  BitBus& in_;
  sim::Signal<std::uint8_t>& step_;
  std::unique_ptr<BitBus> sum_;
  std::vector<std::unique_ptr<sim::Signal<bool>>> carry_;  ///< per nibble
  std::vector<std::unique_ptr<sim::Process>> nibbles_;
  std::size_t signal_count_ = 0;
};

/// The full bit-level layer: blasted shared buses + per-column address
/// incrementers + bit-blasted write-data mux.
class BitLevelLayer {
 public:
  BitLevelLayer(sim::EventKernel& k, SharedWires& shared,
                std::vector<MasterWires*> columns);

  BitLevelLayer(const BitLevelLayer&) = delete;
  BitLevelLayer& operator=(const BitLevelLayer&) = delete;

  std::size_t signal_count() const noexcept { return signal_count_; }

 private:
  SharedWires& sh_;
  std::vector<MasterWires*> cols_;

  std::unique_ptr<BitBus> haddr_bits_;
  std::unique_ptr<BitBus> hwdata_bits_;
  std::unique_ptr<BitBus> hrdata_bits_;
  std::unique_ptr<sim::Process> haddr_blast_;
  std::unique_ptr<sim::Process> hwdata_blast_;
  std::unique_ptr<sim::Process> hrdata_blast_;

  struct ColumnBits {
    std::unique_ptr<BitBus> haddr_bits;
    std::unique_ptr<sim::Process> blast;
    std::unique_ptr<sim::Signal<std::uint8_t>> step;
    std::unique_ptr<sim::Process> step_proc;
    std::unique_ptr<RippleIncrementer> incr;
  };
  std::vector<ColumnBits> col_bits_;

  std::size_t signal_count_ = 0;
};

}  // namespace ahbp::rtl
