#include "sim/cycle_kernel.hpp"

#include <algorithm>
#include <string>

#include "obs/selfprof.hpp"

namespace ahbp::sim {

void CycleKernel::sort_if_needed() {
  if (!sorted_) {
    std::stable_sort(components_.begin(), components_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.base->phase() < b.base->phase();
                     });
    sorted_ = true;
  }
}

void CycleKernel::step() {
  sort_if_needed();
  if (profiler_ != nullptr) {
    step_profiled();
    return;
  }
  for (const Entry& e : components_) {
    e.eval(e.obj, now_);
    ++evaluations_;
  }
  for (const Entry& e : components_) {
    if (e.upd != nullptr) {
      e.upd(e.obj, now_);
    }
  }
  ++now_;
}

void CycleKernel::step_profiled() {
  // Resolve per-component phase ids lazily (sorting or registration
  // invalidates the parallel-array correspondence).
  if (prof_dirty_) {
    prof_ids_.clear();
    for (const Entry& e : components_) {
      prof_ids_.push_back(profiler_->phase("tlm." + std::string(e.base->name())));
    }
    prof_dirty_ = false;
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    obs::ScopedTimer t(profiler_, prof_ids_[i]);
    const Entry& e = components_[i];
    e.eval(e.obj, now_);
    ++evaluations_;
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Entry& e = components_[i];
    if (e.upd == nullptr) {
      continue;
    }
    obs::ScopedTimer t(profiler_, prof_ids_[i]);
    e.upd(e.obj, now_);
  }
  ++now_;
}

void CycleKernel::run(Cycle cycles) {
  stop_ = false;
  for (Cycle i = 0; i < cycles && !stop_; ++i) {
    step();
  }
}

void CycleKernel::save_state(state::StateWriter& w) const {
  w.begin("cycle-kernel");
  w.put_u64(now_);
  w.put_u64(evaluations_);
  w.end();
}

void CycleKernel::restore_state(state::StateReader& r) {
  r.enter("cycle-kernel");
  now_ = r.get_u64();
  evaluations_ = r.get_u64();
  r.leave();
}

}  // namespace ahbp::sim
